"""Shared value types for the PVA reproduction library.

Conventions
-----------
* Addresses are **word addresses** (one machine word = 4 bytes) unless a
  name is explicitly suffixed ``_byte``.
* A base-stride vector is the paper's tuple ``V = <B, S, L>``: base word
  address, stride in words, and element count (section 4.1.1).
* Vector *commands* are what the memory-controller front end places on the
  vector bus: a vector plus an access direction and a transaction id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import VectorSpecError

__all__ = [
    "WORD_BYTES",
    "AccessType",
    "Vector",
    "VectorCommand",
    "ExplicitCommand",
    "ElementAccess",
]

#: Size of one machine word in bytes.  The paper's prototype targets a
#: MIPS R10000 with 32-bit (4-byte) vector elements.
WORD_BYTES = 4


class AccessType(enum.Enum):
    """Direction of a vector operation on the vector bus."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Vector:
    """A base-stride application vector ``V = <B, S, L>`` (section 4.1.1).

    ``base`` is the word address of element 0, ``stride`` the distance in
    words between consecutive elements, and ``length`` the element count.
    Element ``i`` lives at word address ``base + i * stride``.

    Example: ``Vector(base=0, stride=4, length=5)`` designates the words
    ``0, 4, 8, 12, 16`` — the paper's ``<A, 4, 5>`` example.
    """

    base: int
    stride: int
    length: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise VectorSpecError(f"vector base must be >= 0, got {self.base}")
        if self.length <= 0:
            raise VectorSpecError(
                f"vector length must be positive, got {self.length}"
            )
        if self.stride <= 0:
            raise VectorSpecError(
                "vector stride must be positive (the PVA hardware handles "
                f"forward base-stride vectors), got {self.stride}"
            )

    def element_address(self, index: int) -> int:
        """Word address of element ``index`` (``V[index]``)."""
        if not 0 <= index < self.length:
            raise IndexError(
                f"vector index {index} out of range [0, {self.length})"
            )
        return self.base + index * self.stride

    def addresses(self) -> Iterator[int]:
        """Yield the word address of every element, in vector order."""
        addr = self.base
        for _ in range(self.length):
            yield addr
            addr += self.stride

    @property
    def last_address(self) -> int:
        """Word address of the final element."""
        return self.base + (self.length - 1) * self.stride

    @property
    def span_words(self) -> int:
        """Number of words between the first and last element, inclusive."""
        return (self.length - 1) * self.stride + 1

    def split(self, max_length: int) -> List["Vector"]:
        """Split into consecutive subvectors of at most ``max_length``
        elements each.

        This mirrors what the memory-controller front end does when an
        application vector is longer than one cache-line-sized command
        (32 elements in the prototype): a 1024-element application vector
        becomes 32 bus commands (section 6.2).
        """
        if max_length <= 0:
            raise VectorSpecError(
                f"max_length must be positive, got {max_length}"
            )
        pieces: List[Vector] = []
        remaining = self.length
        base = self.base
        while remaining > 0:
            take = min(max_length, remaining)
            pieces.append(Vector(base=base, stride=self.stride, length=take))
            base += take * self.stride
            remaining -= take
        return pieces

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<B={self.base}, S={self.stride}, L={self.length}>"


@dataclass(frozen=True)
class VectorCommand:
    """One vector-bus operation: a vector plus direction and optional tag.

    ``tag`` identifies the command within a trace (useful for debugging and
    statistics); the bus-level three-bit transaction id is assigned
    dynamically by the front end, not stored here.
    """

    vector: Vector
    access: AccessType
    tag: Optional[str] = None
    #: Write data for the command's elements, in vector-index order.
    #: ``None`` on reads and on performance-only write traces (the
    #: simulator scatters a placeholder pattern).
    data: Optional[Tuple[int, ...]] = None

    @property
    def is_read(self) -> bool:
        return self.access.is_read

    @property
    def is_write(self) -> bool:
        return self.access.is_write

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f"[{self.tag}] " if self.tag else ""
        return f"{label}{self.access.value.upper()} {self.vector}"


@dataclass(frozen=True)
class ExplicitCommand:
    """A scatter/gather command over an explicit address list.

    This is the command shape the paper's future-work extensions need
    (chapter 7): vector-indirect gathers broadcast the indirection
    vector's contents (two addresses per cycle) and bit-reversed vectors
    are expanded sequentially — in both cases each bank controller snoops
    the element addresses and bit-masks out its own, instead of evaluating
    FirstHit.  ``broadcast_cycles`` carries the request-phase bus cost the
    expansion implies.
    """

    addresses: Tuple[int, ...]
    access: AccessType
    broadcast_cycles: int
    tag: Optional[str] = None
    data: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.addresses:
            raise VectorSpecError("explicit command carries no addresses")
        if any(a < 0 for a in self.addresses):
            raise VectorSpecError("explicit command has a negative address")
        if self.broadcast_cycles < 1:
            raise VectorSpecError(
                f"broadcast_cycles must be >= 1, got {self.broadcast_cycles}"
            )

    @property
    def is_read(self) -> bool:
        return self.access.is_read

    @property
    def is_write(self) -> bool:
        return self.access.is_write

    @property
    def length(self) -> int:
        return len(self.addresses)


@dataclass(frozen=True)
class ElementAccess:
    """A single expanded element reference: which vector element touched
    which word address.  Produced by reference expanders and used to verify
    the parallel algorithms against brute force."""

    index: int
    address: int


def expand_reference(vector: Vector) -> List[ElementAccess]:
    """Brute-force expansion of a vector into per-element accesses.

    This is the *reference semantics* every parallel-access algorithm in
    :mod:`repro.core` must agree with; it is what a naive serial controller
    would compute one element per cycle.
    """
    return [
        ElementAccess(index=i, address=addr)
        for i, addr in enumerate(vector.addresses())
    ]

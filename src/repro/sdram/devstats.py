"""Device operation counters, shared by the SDRAM and SRAM models.

Lives in its own leaf module so that result types
(:mod:`repro.sim.stats`) can import it without pulling in the full device
model — which itself imports the command-log machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceStats"]


@dataclass
class DeviceStats:
    """Operation counts for one device (summed across internal banks by
    the device's ``stats()`` method, and across devices by the system)."""

    activates: int = 0
    precharges: int = 0
    auto_precharges: int = 0
    reads: int = 0
    writes: int = 0
    turnarounds: int = 0

    @property
    def columns(self) -> int:
        return self.reads + self.writes

    @property
    def row_reuse(self) -> int:
        """Column accesses served without a fresh activate — the paper's
        row hits."""
        return max(0, self.columns - self.activates)

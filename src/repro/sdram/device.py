"""One SDRAM bank module: internal banks, shared data pins, storage.

The prototype's memory is 16 such modules, each a 32-bit wide SDRAM bank
(two Micron x16 parts) with four internal banks.  The device model:

* maps a *local word index* (the bank-controller address space) to
  ``(internal bank, row, column)``;
* enforces per-internal-bank timing via :class:`~repro.sdram.bank.InternalBank`;
* enforces the shared data-pin constraints: one CAS per cycle, plus a
  one-cycle bus turnaround whenever the data direction reverses
  (section 5.2.5);
* keeps a functional storage array so gathered/scattered data can be
  verified against reference semantics, not just counted.

Rows of consecutive local addresses rotate across internal banks so that
long unit-local-stride streams can overlap activates with CAS traffic —
the behaviour the access scheduler's heuristics exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.params import SDRAMTiming
from repro.sim.events import HORIZON
from repro.sdram.bank import InternalBank
from repro.sdram.commands import SDRAMCommand
from repro.sdram.devstats import DeviceStats
from repro.sim.trace_log import CommandEvent

__all__ = ["Location", "DeviceStats", "SDRAMDevice"]


@dataclass(frozen=True)
class Location:
    """Physical coordinates of a local word inside the device."""

    internal_bank: int
    row: int
    column: int


class SDRAMDevice:
    """A 32-bit-wide SDRAM bank module with ``internal_banks`` row buffers."""

    __slots__ = (
        "timing",
        "bus_turnaround",
        "banks",
        "_ib_mask",
        "_ib_bits",
        "_row_mask",
        "_row_bits",
        "_loc_cache",
        "_last_column_cycle",
        "_last_was_write",
        "_storage",
        "reads",
        "writes",
        "turnarounds",
        "log",
        "_next_refresh",
        "refreshes",
    )

    #: Marks this device as having row state (the scheduler checks this
    #: instead of isinstance tests; the SRAM model sets it False).
    has_rows = True

    def __init__(self, timing: SDRAMTiming, bus_turnaround: int = 1):
        self.timing = timing
        self.bus_turnaround = bus_turnaround
        self.banks: List[InternalBank] = [
            InternalBank(i, timing) for i in range(timing.internal_banks)
        ]
        self._ib_mask = timing.internal_banks - 1
        self._ib_bits = timing.internal_banks.bit_length() - 1
        self._row_mask = timing.row_words - 1
        self._row_bits = timing.row_words.bit_length() - 1
        #: locate() memo — the mapping is pure, and the scheduler asks
        #: for the same handful of in-flight words every cycle, so
        #: caching the frozen Location wins back the dataclass
        #: construction cost on the hot path.
        self._loc_cache: Dict[int, Location] = {}
        # Shared data-pin state.
        self._last_column_cycle = -10
        self._last_was_write: Optional[bool] = None
        # Functional storage, keyed by local word index.
        self._storage: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.turnarounds = 0
        #: Optional command recorder (see repro.sim.trace_log); None by
        #: default so the hot path pays nothing.
        self.log = None
        # Auto-refresh bookkeeping (section 2.2: DRAM charge leaks and
        # every row must be refreshed periodically).
        self._next_refresh = (
            timing.refresh_interval if timing.refresh_interval > 0 else None
        )
        self.refreshes = 0

    # ----------------------------------------------------------------- #
    # Geometry
    # ----------------------------------------------------------------- #

    @property
    def last_was_write(self) -> Optional[bool]:
        """Direction of the most recent data transfer on the pins (None
        before any transfer) — input to the scheduler's polarity rule."""
        return self._last_was_write

    @property
    def schedule_geometry(self):
        """Hashable descriptor of :meth:`locate`'s mapping, used as part
        of the broadcast-time hit-schedule memo key
        (:mod:`repro.pva.schedule`).  ``("rot", row_bits, ib_bits)``:
        consecutive rows rotate internal banks."""
        return ("rot", self._row_bits, self._ib_bits)

    def locate(self, local_word: int) -> Location:
        """Map a local word index to (internal bank, row, column).

        Consecutive rows rotate internal banks, so streams that walk local
        addresses linearly alternate row buffers.
        """
        loc = self._loc_cache.get(local_word)
        if loc is None:
            column = local_word & self._row_mask
            row_seq = local_word >> self._row_bits
            internal_bank = row_seq & self._ib_mask
            row = row_seq >> self._ib_bits
            loc = Location(internal_bank=internal_bank, row=row, column=column)
            self._loc_cache[local_word] = loc
        return loc

    def open_row(self, internal_bank: int) -> Optional[int]:
        return self.banks[internal_bank].open_row

    # ----------------------------------------------------------------- #
    # Scoreboard queries
    # ----------------------------------------------------------------- #

    def data_pins_ready(self, cycle: int, is_write: bool) -> bool:
        """One CAS per cycle on the shared pins, plus turnaround cycles
        when the transfer direction reverses."""
        if cycle <= self._last_column_cycle:
            return False
        if self._last_was_write is not None and self._last_was_write != is_write:
            return cycle >= self._last_column_cycle + 1 + self.bus_turnaround
        return True

    def can_column(self, local_word: int, cycle: int, is_write: bool) -> bool:
        loc = self.locate(local_word)
        return self.banks[loc.internal_bank].can_column(
            cycle, loc.row
        ) and self.data_pins_ready(cycle, is_write)

    def can_column_at(
        self, internal_bank: int, row: int, cycle: int, is_write: bool
    ) -> bool:
        """:meth:`can_column` with the coordinates already decoded (the
        precomputed-schedule fast path)."""
        return self.banks[internal_bank].can_column(
            cycle, row
        ) and self.data_pins_ready(cycle, is_write)

    def can_activate(self, local_word: int, cycle: int) -> bool:
        loc = self.locate(local_word)
        return self.banks[loc.internal_bank].can_activate(cycle)

    def can_precharge(self, internal_bank: int, cycle: int) -> bool:
        return self.banks[internal_bank].can_precharge(cycle)

    def row_is_open_for(self, local_word: int) -> bool:
        """Is the row containing ``local_word`` currently open?"""
        loc = self.locate(local_word)
        return self.banks[loc.internal_bank].open_row == loc.row

    def conflicting_row_open(self, local_word: int) -> bool:
        """Is a *different* row open in this word's internal bank?"""
        loc = self.locate(local_word)
        open_row = self.banks[loc.internal_bank].open_row
        return open_row is not None and open_row != loc.row

    # ----------------------------------------------------------------- #
    # Time-skip lower bounds
    # ----------------------------------------------------------------- #

    @property
    def next_refresh_cycle(self) -> Optional[int]:
        """Cycle the next auto-refresh fires, or None when disabled."""
        return self._next_refresh

    def pins_ready_at(self, is_write: bool) -> int:
        """First cycle the shared data pins accept a transfer in the
        given direction (one CAS per cycle + turnaround on reversal)."""
        if self._last_was_write is not None and self._last_was_write != is_write:
            return self._last_column_cycle + 1 + self.bus_turnaround
        return self._last_column_cycle + 1

    def column_ready_at(self, local_word: int, is_write: bool) -> int:
        """Earliest cycle a CAS to ``local_word`` could become legal by
        the passage of time alone.  :data:`~repro.sim.events.HORIZON`
        when the word's row is not open — opening it takes an activate,
        which is itself an observable event."""
        loc = self.locate(local_word)
        return self.column_ready_at_coords(loc.internal_bank, loc.row, is_write)

    def column_ready_at_coords(
        self, internal_bank: int, row: int, is_write: bool
    ) -> int:
        """:meth:`column_ready_at` with the coordinates already decoded
        (the precomputed-schedule fast path)."""
        bank = self.banks[internal_bank]
        if bank.open_row != row:
            return HORIZON
        ready = bank.column_ready_at
        pins = self.pins_ready_at(is_write)
        return ready if ready > pins else pins

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest cycle at or after ``cycle`` at which any device
        resource (an internal bank's restimers, or the refresh engine)
        releases — the device's generic time-skip lower bound."""
        bound = HORIZON
        if self._next_refresh is not None:
            bound = self._next_refresh
        for bank in self.banks:
            ready = bank.next_event_cycle(cycle)
            if ready < bound:
                bound = ready
        return bound if bound > cycle else cycle

    # ----------------------------------------------------------------- #
    # Commands
    # ----------------------------------------------------------------- #

    def maybe_refresh(self, cycle: int) -> bool:
        """Run an auto-refresh if one is due (called once per cycle by the
        bank controller).

        A refresh closes every row and blocks the whole device for
        ``t_rfc`` cycles.  Returns True when a refresh started this cycle
        — the scheduler treats that cycle as consumed.
        """
        if self._next_refresh is None or cycle < self._next_refresh:
            return False
        for bank in self.banks:
            bank.force_refresh(cycle, self.timing.t_rfc)
        self._next_refresh += self.timing.refresh_interval
        self.refreshes += 1
        return True

    def activate(self, local_word: int, cycle: int) -> None:
        loc = self.locate(local_word)
        self.activate_at(loc.internal_bank, loc.row, cycle)

    def activate_at(self, internal_bank: int, row: int, cycle: int) -> None:
        """:meth:`activate` with the coordinates already decoded (the
        precomputed-schedule fast path)."""
        self.banks[internal_bank].activate(row, cycle)
        if self.log is not None:
            self.log.record(
                CommandEvent(
                    cycle=cycle,
                    command=SDRAMCommand.ACTIVATE,
                    internal_bank=internal_bank,
                    row=row,
                )
            )

    def precharge(self, internal_bank: int, cycle: int) -> None:
        self.banks[internal_bank].precharge(cycle)
        if self.log is not None:
            self.log.record(
                CommandEvent(
                    cycle=cycle,
                    command=SDRAMCommand.PRECHARGE,
                    internal_bank=internal_bank,
                )
            )

    def column(
        self,
        local_word: int,
        cycle: int,
        is_write: bool,
        auto_precharge: bool = False,
        value: Optional[int] = None,
    ) -> Tuple[int, Optional[int]]:
        """Issue one CAS to ``local_word``.

        Returns ``(data_cycle, read_value)``: for reads, the cycle the
        datum appears on the pins (``cycle + cas_latency``) and the stored
        value; for writes, the cycle the datum is consumed and ``None``.
        """
        loc = self.locate(local_word)
        return self.column_at(
            local_word,
            loc.internal_bank,
            loc.row,
            cycle,
            is_write,
            auto_precharge=auto_precharge,
            value=value,
        )

    def column_at(
        self,
        local_word: int,
        internal_bank: int,
        row: int,
        cycle: int,
        is_write: bool,
        auto_precharge: bool = False,
        value: Optional[int] = None,
    ) -> Tuple[int, Optional[int]]:
        """:meth:`column` with the coordinates already decoded (the
        precomputed-schedule fast path); ``local_word`` still keys the
        functional storage array."""
        if not self.data_pins_ready(cycle, is_write):
            raise SchedulingError(
                f"data pins busy at cycle {cycle} "
                f"(last column at {self._last_column_cycle})"
            )
        self.banks[internal_bank].column(cycle, is_write, auto_precharge)
        if (
            self._last_was_write is not None
            and self._last_was_write != is_write
        ):
            self.turnarounds += 1
        self._last_column_cycle = cycle
        self._last_was_write = is_write
        if self.log is not None:
            if is_write:
                command = (
                    SDRAMCommand.WRITE_AP
                    if auto_precharge
                    else SDRAMCommand.WRITE
                )
            else:
                command = (
                    SDRAMCommand.READ_AP
                    if auto_precharge
                    else SDRAMCommand.READ
                )
            self.log.record(
                CommandEvent(
                    cycle=cycle,
                    command=command,
                    internal_bank=internal_bank,
                    row=row,
                    column=local_word & self._row_mask,
                )
            )
        if is_write:
            if value is None:
                raise SchedulingError("write column issued without data")
            self._storage[local_word] = value
            self.writes += 1
            return cycle, None
        self.reads += 1
        return cycle + self.timing.cas_latency, self._storage.get(local_word, 0)

    # ----------------------------------------------------------------- #
    # Functional access & statistics
    # ----------------------------------------------------------------- #

    def peek(self, local_word: int) -> int:
        """Read storage directly (no timing)."""
        return self._storage.get(local_word, 0)

    def poke(self, local_word: int, value: int) -> None:
        """Write storage directly (no timing) — test/benchmark setup."""
        self._storage[local_word] = value

    def stats(self) -> DeviceStats:
        return DeviceStats(
            activates=sum(b.activates for b in self.banks),
            precharges=sum(b.precharges for b in self.banks),
            auto_precharges=sum(b.auto_precharges for b in self.banks),
            reads=self.reads,
            writes=self.writes,
            turnarounds=self.turnarounds,
        )

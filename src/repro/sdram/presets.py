"""Named SDRAM timing presets.

Chapter 2 surveys the DRAM technology of the era; these presets express
representative points of that landscape in the simulator's timing
vocabulary (memory-bus cycles at the prototype's 100 MHz), so the PVA's
sensitivity to the underlying part can be swept:

* ``PC100_SDRAM`` — the paper's part: Micron 256 Mbit-class SDRAM,
  RAS/CAS latency two cycles each, four internal banks (section 5.1).
* ``FAST_PAGE_MODE`` — an FPM-era part (section 2.3.1): slower core, a
  single internal bank (no overlap between banks), smaller pages.
* ``EDO`` — EDO DRAM (section 2.3.2): FPM timing with one cycle shaved
  off the effective CAS path thanks to the output latch, still a single
  internal bank.
* ``DDR_CLASS`` — a faster, more deeply banked part in the SLDRAM/DDR
  direction (section 2.3.4): tighter precharge, more internal banks.

Presets are plain :class:`~repro.params.SDRAMTiming` values; build a
system with ``SystemParams(sdram=PRESETS[name])``.
"""

from __future__ import annotations

from typing import Dict

from repro.params import SDRAMTiming

__all__ = [
    "PC100_SDRAM",
    "FAST_PAGE_MODE",
    "EDO",
    "DDR_CLASS",
    "PRESETS",
]

PC100_SDRAM = SDRAMTiming(
    t_rcd=2, cas_latency=2, t_rp=2, t_wr=1, internal_banks=4, row_words=512
)

FAST_PAGE_MODE = SDRAMTiming(
    t_rcd=4, cas_latency=3, t_rp=4, t_wr=2, internal_banks=1, row_words=256
)

EDO = SDRAMTiming(
    t_rcd=4, cas_latency=2, t_rp=4, t_wr=2, internal_banks=1, row_words=256
)

DDR_CLASS = SDRAMTiming(
    t_rcd=2, cas_latency=2, t_rp=1, t_wr=1, internal_banks=8, row_words=512
)

PRESETS: Dict[str, SDRAMTiming] = {
    "pc100-sdram": PC100_SDRAM,
    "fpm": FAST_PAGE_MODE,
    "edo": EDO,
    "ddr-class": DDR_CLASS,
}

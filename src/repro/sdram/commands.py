"""SDRAM command vocabulary.

SDRAM is commanded, not strobed: "it is more appropriate to consider these
as commands issued to an SDRAM chip at the edge of the clock"
(section 2.3.3).  These are the operations the access scheduler reorders.
"""

from __future__ import annotations

import enum

__all__ = ["SDRAMCommand"]


class SDRAMCommand(enum.Enum):
    """One per-cycle command on an SDRAM command bus."""

    NOP = "nop"
    ACTIVATE = "activate"  # RAS: open a row in an internal bank
    READ = "read"  # CAS read
    WRITE = "write"  # CAS write
    READ_AP = "read_ap"  # CAS read with auto-precharge
    WRITE_AP = "write_ap"  # CAS write with auto-precharge
    PRECHARGE = "precharge"  # close the open row

    @property
    def is_column(self) -> bool:
        """True for CAS (data-moving) commands."""
        return self in (
            SDRAMCommand.READ,
            SDRAMCommand.WRITE,
            SDRAMCommand.READ_AP,
            SDRAMCommand.WRITE_AP,
        )

    @property
    def is_read(self) -> bool:
        return self in (SDRAMCommand.READ, SDRAMCommand.READ_AP)

    @property
    def is_write(self) -> bool:
        return self in (SDRAMCommand.WRITE, SDRAMCommand.WRITE_AP)

    @property
    def auto_precharge(self) -> bool:
        return self in (SDRAMCommand.READ_AP, SDRAMCommand.WRITE_AP)

"""Internal-bank state machine of an SDRAM device.

Each SDRAM device contains several internal banks (four in the Micron
parts the prototype drives), each with its own row buffer.  An internal
bank cycles through closed -> activating -> open -> precharging, guarded
by three restimers (activate-ready, column-ready, precharge-ready).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchedulingError
from repro.params import SDRAMTiming
from repro.sdram.restimer import Restimer

__all__ = ["InternalBank"]


class InternalBank:
    """One internal bank: a row buffer plus its timing scoreboard."""

    __slots__ = (
        "index",
        "timing",
        "open_row",
        "_activate_timer",
        "_column_timer",
        "_precharge_timer",
        "activates",
        "precharges",
        "auto_precharges",
    )

    def __init__(self, index: int, timing: SDRAMTiming):
        self.index = index
        self.timing = timing
        self.open_row: Optional[int] = None
        self._activate_timer = Restimer(f"ib{index}.activate")
        self._column_timer = Restimer(f"ib{index}.column")
        self._precharge_timer = Restimer(f"ib{index}.precharge")
        # Statistics
        self.activates = 0
        self.precharges = 0
        self.auto_precharges = 0

    # ----------------------------------------------------------------- #
    # Queries (the scheduler's scoreboard reads these)
    # ----------------------------------------------------------------- #

    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def can_activate(self, cycle: int) -> bool:
        """May a row be opened this cycle?  Requires the bank closed and
        the precharge period elapsed."""
        return self.open_row is None and self._activate_timer.available(cycle)

    def can_column(self, cycle: int, row: int) -> bool:
        """May a CAS to ``row`` issue this cycle?  Requires that exact row
        open and the RAS-to-CAS delay elapsed."""
        return self.open_row == row and self._column_timer.available(cycle)

    def can_precharge(self, cycle: int) -> bool:
        """May the open row be closed this cycle?"""
        return self.open_row is not None and self._precharge_timer.available(
            cycle
        )

    # ----------------------------------------------------------------- #
    # Time-skip lower bounds
    # ----------------------------------------------------------------- #

    @property
    def activate_ready_at(self) -> int:
        """Cycle the activate restimer releases (meaningful when closed)."""
        return self._activate_timer.ready_at

    @property
    def column_ready_at(self) -> int:
        """Cycle the column restimer releases (meaningful when open)."""
        return self._column_timer.ready_at

    @property
    def precharge_ready_at(self) -> int:
        """Cycle the precharge restimer releases (meaningful when open)."""
        return self._precharge_timer.ready_at

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest cycle at or after ``cycle`` at which *some* command
        to this internal bank could become legal: the activate release
        when closed, the earlier of column/precharge release when open.
        A lower bound only — legality also needs the right row open and
        the shared data pins, which the device layer tracks.
        """
        if self.open_row is None:
            ready = self._activate_timer.ready_at
        else:
            ready = min(
                self._column_timer.ready_at, self._precharge_timer.ready_at
            )
        return ready if ready > cycle else cycle

    # ----------------------------------------------------------------- #
    # Commands
    # ----------------------------------------------------------------- #

    def activate(self, row: int, cycle: int) -> None:
        """Open ``row`` (RAS).  First CAS is legal ``t_rcd`` cycles later."""
        if self.open_row is not None:
            raise SchedulingError(
                f"activate on internal bank {self.index} while row "
                f"{self.open_row} is open"
            )
        self._activate_timer.check(cycle)
        self.open_row = row
        self._column_timer.hold_until(cycle + self.timing.t_rcd)
        # A freshly opened row may not be precharged before the activate
        # completes (a minimal tRAS approximation).
        self._precharge_timer.hold_until(cycle + self.timing.t_rcd)
        self.activates += 1

    def column(self, cycle: int, is_write: bool, auto_precharge: bool) -> None:
        """Issue one CAS.  The device layer accounts for data movement and
        CAS latency; the bank only tracks row/precharge constraints."""
        if self.open_row is None:
            raise SchedulingError(
                f"column on internal bank {self.index} with no open row"
            )
        self._column_timer.check(cycle)
        if is_write:
            # Write recovery before the row may be closed.
            self._precharge_timer.hold_until(cycle + 1 + self.timing.t_wr)
        else:
            self._precharge_timer.hold_until(cycle + 1)
        if auto_precharge:
            self._close(cycle + 1 + (self.timing.t_wr if is_write else 0))
            self.auto_precharges += 1

    def precharge(self, cycle: int) -> None:
        """Explicit precharge of the open row."""
        if self.open_row is None:
            raise SchedulingError(
                f"precharge on internal bank {self.index} with no open row"
            )
        self._precharge_timer.check(cycle)
        self._close(cycle)
        self.precharges += 1

    def force_refresh(self, cycle: int, t_rfc: int) -> None:
        """Auto-refresh: the row closes unconditionally and the bank is
        unavailable for ``t_rfc`` cycles (refresh embeds its own
        precharge, so ``t_rp`` is not added on top)."""
        self.open_row = None
        self._activate_timer.hold_until(cycle + t_rfc)

    def _close(self, effective_cycle: int) -> None:
        """Close the row; the next activate waits out ``t_rp``."""
        self.open_row = None
        self._activate_timer.hold_until(effective_cycle + self.timing.t_rp)

"""SDRAM device substrate: internal-bank state machines, timing
enforcement (the paper's *restimers*, section 5.2.5), and a functional
storage array so scatter/gather results can be checked for correctness."""

from repro.sdram.commands import SDRAMCommand
from repro.sdram.restimer import Restimer
from repro.sdram.bank import InternalBank
from repro.sdram.device import SDRAMDevice, DeviceStats

__all__ = [
    "SDRAMCommand",
    "Restimer",
    "InternalBank",
    "SDRAMDevice",
    "DeviceStats",
]

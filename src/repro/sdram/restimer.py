"""Restimers: the small counters that enforce SDRAM timing (section 5.2.5).

"To maintain these timing restrictions we use a set of small counters
called *restimers* each of which enforces one timing parameter by
asserting a 'resource available' line when the corresponding operation may
be performed."

A :class:`Restimer` holds the cycle at which its resource becomes
available; the scheduler's scoreboard checks ``available(cycle)`` before
issuing and calls ``hold_until`` when an operation reserves the resource.
"""

from __future__ import annotations

from repro.errors import TimingViolation

__all__ = ["Restimer"]


class Restimer:
    """One timing parameter's availability counter."""

    __slots__ = ("name", "_ready_at")

    def __init__(self, name: str):
        self.name = name
        self._ready_at = 0

    @property
    def ready_at(self) -> int:
        """First cycle at which the guarded operation may be issued."""
        return self._ready_at

    def available(self, cycle: int) -> bool:
        """Resource-available line: may the operation issue this cycle?"""
        return cycle >= self._ready_at

    def hold_until(self, cycle: int) -> None:
        """Reserve the resource through ``cycle - 1``.

        Holds never shrink: overlapping reservations keep the latest
        release point, matching a counter that reloads only with larger
        values.
        """
        if cycle > self._ready_at:
            self._ready_at = cycle

    def next_event_cycle(self, cycle: int) -> int:
        """First cycle at or after ``cycle`` at which the guarded
        operation may issue — the restimer's time-skip lower bound."""
        return self._ready_at if self._ready_at > cycle else cycle

    def check(self, cycle: int) -> None:
        """Scoreboard assertion: raise if the resource is busy."""
        if not self.available(cycle):
            raise TimingViolation(
                f"restimer {self.name!r} busy until cycle "
                f"{self._ready_at}, operation attempted at {cycle}"
            )

    def reset(self) -> None:
        self._ready_at = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Restimer({self.name!r}, ready_at={self._ready_at})"

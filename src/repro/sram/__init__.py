"""Idealized SRAM substrate for the PVA-SRAM comparison system."""

from repro.sram.device import SRAMDevice

__all__ = ["SRAMDevice"]

"""Idealized SRAM bank module (section 6.1).

"Based on static RAM, this system incurs no precharge or RAS latencies:
all memory accesses take a single cycle."  The device exposes the same
scoreboard interface as :class:`~repro.sdram.device.SDRAMDevice` so the PVA
bank controllers drive either interchangeably; row-management queries
report "always open" and the only structural constraint left is the shared
data pins (one access per cycle, with turnaround on direction reversal so
the comparison isolates DRAM-specific overheads, not bus physics).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import SchedulingError
from repro.params import SRAMTiming
from repro.sdram.devstats import DeviceStats
from repro.sdram.device import Location

__all__ = ["SRAMDevice"]


class SRAMDevice:
    """A uniform-access memory bank with SDRAM-compatible scoreboarding."""

    __slots__ = (
        "timing",
        "bus_turnaround",
        "_last_column_cycle",
        "_last_was_write",
        "_storage",
        "reads",
        "writes",
        "turnarounds",
        "log",
        "_loc_cache",
    )

    has_rows = False

    def __init__(self, timing: Optional[SRAMTiming] = None, bus_turnaround: int = 1):
        self.timing = timing or SRAMTiming()
        self.bus_turnaround = bus_turnaround
        self._last_column_cycle = -10
        self._last_was_write: Optional[bool] = None
        self._storage = {}
        self.reads = 0
        self.writes = 0
        self.turnarounds = 0
        #: Optional command recorder (see repro.sim.trace_log).
        self.log = None
        #: locate() memo (the mapping is pure; see SDRAMDevice.locate).
        self._loc_cache = {}

    @property
    def last_was_write(self) -> Optional[bool]:
        """Direction of the most recent data transfer on the pins."""
        return self._last_was_write

    @property
    def schedule_geometry(self):
        """Hit-schedule geometry descriptor (see
        :mod:`repro.pva.schedule`): one flat always-open row."""
        return ("flat",)

    # --- geometry: a single flat "row" ------------------------------- #

    def locate(self, local_word: int) -> Location:
        loc = self._loc_cache.get(local_word)
        if loc is None:
            loc = Location(internal_bank=0, row=0, column=local_word)
            self._loc_cache[local_word] = loc
        return loc

    def open_row(self, internal_bank: int) -> Optional[int]:
        return 0

    # --- scoreboard --------------------------------------------------- #

    def data_pins_ready(self, cycle: int, is_write: bool) -> bool:
        if cycle <= self._last_column_cycle:
            return False
        if self._last_was_write is not None and self._last_was_write != is_write:
            return cycle >= self._last_column_cycle + 1 + self.bus_turnaround
        return True

    def can_column(self, local_word: int, cycle: int, is_write: bool) -> bool:
        return self.data_pins_ready(cycle, is_write)

    def can_column_at(
        self, internal_bank: int, row: int, cycle: int, is_write: bool
    ) -> bool:
        """Coordinate fast path — the pins are the only constraint."""
        return self.data_pins_ready(cycle, is_write)

    def can_activate(self, local_word: int, cycle: int) -> bool:
        return False  # nothing to activate

    def can_precharge(self, internal_bank: int, cycle: int) -> bool:
        return False  # nothing to precharge

    def row_is_open_for(self, local_word: int) -> bool:
        return True

    def conflicting_row_open(self, local_word: int) -> bool:
        return False

    # --- time-skip lower bounds ---------------------------------------- #

    def pins_ready_at(self, is_write: bool) -> int:
        """First cycle the shared data pins accept a transfer in the
        given direction — the SRAM's only structural constraint."""
        if self._last_was_write is not None and self._last_was_write != is_write:
            return self._last_column_cycle + 1 + self.bus_turnaround
        return self._last_column_cycle + 1

    def column_ready_at(self, local_word: int, is_write: bool) -> int:
        """Earliest cycle an access to ``local_word`` could become legal
        by time alone (no rows: the pins are the only restriction)."""
        return self.pins_ready_at(is_write)

    def column_ready_at_coords(
        self, internal_bank: int, row: int, is_write: bool
    ) -> int:
        """Coordinate fast path — identical to :meth:`column_ready_at`."""
        return self.pins_ready_at(is_write)

    def next_event_cycle(self, cycle: int) -> int:
        """Generic time-skip bound: the pin release in either direction."""
        ready = self._last_column_cycle + 1
        return ready if ready > cycle else cycle

    # --- commands ------------------------------------------------------ #

    def column(
        self,
        local_word: int,
        cycle: int,
        is_write: bool,
        auto_precharge: bool = False,
        value: Optional[int] = None,
    ) -> Tuple[int, Optional[int]]:
        if not self.data_pins_ready(cycle, is_write):
            raise SchedulingError(
                f"SRAM data pins busy at cycle {cycle} "
                f"(last access at {self._last_column_cycle})"
            )
        if (
            self._last_was_write is not None
            and self._last_was_write != is_write
        ):
            self.turnarounds += 1
        self._last_column_cycle = cycle
        self._last_was_write = is_write
        if self.log is not None:
            from repro.sdram.commands import SDRAMCommand
            from repro.sim.trace_log import CommandEvent

            self.log.record(
                CommandEvent(
                    cycle=cycle,
                    command=SDRAMCommand.WRITE
                    if is_write
                    else SDRAMCommand.READ,
                    internal_bank=0,
                    row=0,
                    column=local_word,
                )
            )
        if is_write:
            if value is None:
                raise SchedulingError("write issued without data")
            self._storage[local_word] = value
            self.writes += 1
            return cycle, None
        self.reads += 1
        return cycle + self.timing.access_cycles, self._storage.get(
            local_word, 0
        )

    def column_at(
        self,
        local_word: int,
        internal_bank: int,
        row: int,
        cycle: int,
        is_write: bool,
        auto_precharge: bool = False,
        value: Optional[int] = None,
    ) -> Tuple[int, Optional[int]]:
        """Coordinate fast path — the SRAM ignores the coordinates."""
        return self.column(
            local_word, cycle, is_write, auto_precharge=auto_precharge, value=value
        )

    # --- functional access & statistics -------------------------------- #

    def peek(self, local_word: int) -> int:
        return self._storage.get(local_word, 0)

    def poke(self, local_word: int, value: int) -> None:
        self._storage[local_word] = value

    def stats(self) -> DeviceStats:
        return DeviceStats(
            activates=0,
            precharges=0,
            auto_precharges=0,
            reads=self.reads,
            writes=self.writes,
            turnarounds=self.turnarounds,
        )

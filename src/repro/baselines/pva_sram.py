"""Baseline 3: the Parallel Vector Access SRAM system (section 6.1).

The same PVA controller and bus protocol, but driving idealized
uniform-access SRAM banks: no RAS, CAS or precharge latencies.  The paper
uses the gap between PVA-SDRAM and PVA-SRAM (at most ~15 %) as the measure
of how well the scheduling heuristics hide DRAM overheads; the experiment
harness reports the min and max over relative alignments, matching the
"min/max parallel vector access SRAM" bars.

Because the factory returns a real :class:`~repro.pva.system.PVAMemorySystem`
(just with an SRAM device in every bank controller), the variant runs on
the shared simulation kernel like every other system: ``python -m repro
bench`` reports it with the same tick-vs-skip timings and per-component
cycle-attribution breakdown, and it honours ``reset()``/``capture_data``
under the common :class:`~repro.sim.runner.MemorySystem` contract.
"""

from __future__ import annotations

from typing import Optional

from repro.params import SRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.sram.device import SRAMDevice

__all__ = ["make_pva_sram"]


def make_pva_sram(
    params: Optional[SystemParams] = None,
    sram_timing: Optional[SRAMTiming] = None,
    name: str = "pva-sram",
) -> PVAMemorySystem:
    """Build a PVA memory system whose banks are idealized SRAM."""
    params = params or SystemParams()
    timing = sram_timing or SRAMTiming()

    def factory(p: SystemParams) -> SRAMDevice:
        return SRAMDevice(timing, bus_turnaround=p.bus_turnaround)

    return PVAMemorySystem(params=params, device_factory=factory, name=name)

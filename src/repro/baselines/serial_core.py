"""Kernel adapter for the analytic serial baselines.

The two serial systems (cache-line fills, gathering pipeline) are
analytic models: each vector command occupies the system for a
closed-form number of cycles, back to back, with no idle gaps and no
split transactions.  Historically each had its own ``for command``
costing loop with private watchdog wiring; under the shared simulation
kernel both register a single :class:`SerialCommandEngine` component
and delete the loop.

The engine processes every command whose start time has arrived —
``while`` rather than ``if``, so a zero-cost command can never wedge
the clock — and advances its ``busy_until`` frontier by the cost the
owning system reports.  Its time-skip bound is simply that frontier,
which lets the skip loop jump command to command exactly as the old
analytic loops did, while the reference tick loop now really visits
every cycle (and the differential suite checks the two agree).
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple

from repro.sim.events import HORIZON
from repro.types import VectorCommand

__all__ = ["SerialCommandEngine", "SerialCostModel"]


class SerialCostModel(Protocol):
    """What the engine needs from an analytic serial system."""

    def process_command(self, command: VectorCommand, start_cycle: int) -> int:
        """Account one command (stats, functional storage) and return
        the number of cycles it occupies the system."""
        ...


class SerialCommandEngine:
    """The single clocked component of an analytic serial system."""

    name = "serial-engine"

    def __init__(self, model: SerialCostModel, commands: Sequence[VectorCommand]):
        self.model = model
        self.commands = commands
        self.next_index = 0
        #: First cycle at which the system is free again — the cost
        #: frontier; equals the run's total cycle count once drained.
        self.busy_until = 0

    def done(self) -> bool:
        return self.next_index >= len(self.commands)

    def tick(self, cycle: int) -> bool:
        acted = False
        commands = self.commands
        while self.next_index < len(commands) and self.busy_until <= cycle:
            command = commands[self.next_index]
            self.busy_until += self.model.process_command(
                command, self.busy_until
            )
            self.next_index += 1
            acted = True
        return acted

    def next_event_cycle(self, cycle: int) -> int:
        if self.next_index >= len(self.commands):
            return HORIZON
        return self.busy_until if self.busy_until > cycle else cycle

    def account(self, start: int, end: int) -> Tuple[int, int, int]:
        # The analytic model is busy straight through its cost frontier
        # and idle after — it never stalls.
        busy_end = min(end, self.busy_until)
        busy = busy_end - start if busy_end > start else 0
        return (busy, 0, (end - start) - busy)

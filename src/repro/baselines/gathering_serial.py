"""Baseline 2: the gathering pipelined serial SDRAM system (section 6.1).

A 16-module, word-interleaved SDRAM system with a closed-page policy that
gathers vector elements *individually* but issues the accesses serially —
the paper's stand-in for a conventional pipelined vector unit:

* precharge cost is incurred once at the beginning of each vector command;
* the first element pays the full RAS + CAS latency; RAS latencies for
  every later element overlap with activity on other banks (the paper's
  optimistic assumption), so subsequent elements stream at one per cycle;
* vector commands never cross DRAM pages (pages stay open within a
  command);
* the gathered line then crosses the 64-bit bus (16 data cycles), and —
  having no split transactions — the next command starts only after that.

The per-command cost is therefore independent of stride, which is exactly
why this system beats the cache-line baseline at large strides but loses
to the PVA's bank-parallel gathering by roughly a factor of three.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.params import SystemParams
from repro.sdram.device import DeviceStats
from repro.sim.runner import Watchdog
from repro.sim.stats import BusStats, RunResult
from repro.types import AccessType, VectorCommand

__all__ = ["GatheringSerialSDRAM"]


class GatheringSerialSDRAM:
    """Serial element-gathering memory system."""

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        name: str = "gathering-serial",
    ):
        self.params = params or SystemParams()
        self.name = name
        #: 64-bit memory bus moves 8 bytes per cycle.
        self.transfer_cycles = self.params.line_bytes // 8
        #: Flat functional memory image (word address -> value).
        self._storage = {}

    def poke(self, address: int, value: int) -> None:
        """Write one word directly into the functional memory image."""
        self._storage[address] = value

    def peek(self, address: int) -> int:
        """Read one word from the functional memory image."""
        return self._storage.get(address, 0)

    def command_cycles(self, command: VectorCommand) -> int:
        """Cycles one vector command occupies the system."""
        timing = self.params.sdram
        access_cycles = (
            timing.t_rp  # closed-page precharge at command start
            + timing.t_rcd  # first element's RAS
            + timing.cas_latency  # first element's CAS
            + command.vector.length  # one serial address issue per element
        )
        # One command cycle on the bus, then the data transfer (which the
        # serial controller does not overlap with the next command).
        return 1 + access_cycles + self.transfer_cycles

    def next_event_cycle(self, cycle: int) -> int:
        """Time-skip interface: the analytic model jumps from command to
        command with no idle cycles, so the next event is always "now"."""
        return cycle

    def run(
        self,
        commands: Sequence[VectorCommand],
        capture_data: bool = False,
    ) -> RunResult:
        cycles = 0
        reads = writes = 0
        elements_read = elements_written = 0
        activates = 0
        columns = 0
        bus = BusStats()
        read_lines = [] if capture_data else None
        watchdog = Watchdog(len(commands), system=self.name)
        for command in commands:
            watchdog.check(cycles)
            cycles += self.command_cycles(command)
            activates += 1
            columns += command.vector.length
            bus.request_cycles += 1 + command.vector.length
            bus.data_cycles += self.transfer_cycles
            if command.access is AccessType.READ:
                reads += 1
                elements_read += command.vector.length
                if read_lines is not None:
                    read_lines.append(
                        tuple(
                            self._storage.get(a, 0)
                            for a in command.vector.addresses()
                        )
                    )
            else:
                writes += 1
                elements_written += command.vector.length
                data = command.data or tuple(range(command.vector.length))
                for address, value in zip(command.vector.addresses(), data):
                    self._storage[address] = value
        device = DeviceStats(
            activates=activates,
            precharges=activates,
            reads=columns if reads else 0,
            writes=0 if reads else columns,
        )
        result = RunResult(
            system=self.name,
            cycles=cycles,
            commands=len(commands),
            read_commands=reads,
            write_commands=writes,
            elements_read=elements_read,
            elements_written=elements_written,
            device=device,
            bus=bus,
        )
        result.read_lines = read_lines
        return result

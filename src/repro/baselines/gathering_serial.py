"""Baseline 2: the gathering pipelined serial SDRAM system (section 6.1).

A 16-module, word-interleaved SDRAM system with a closed-page policy that
gathers vector elements *individually* but issues the accesses serially —
the paper's stand-in for a conventional pipelined vector unit:

* precharge cost is incurred once at the beginning of each vector command;
* the first element pays the full RAS + CAS latency; RAS latencies for
  every later element overlap with activity on other banks (the paper's
  optimistic assumption), so subsequent elements stream at one per cycle;
* vector commands never cross DRAM pages (pages stay open within a
  command);
* the gathered line then crosses the 64-bit bus (16 data cycles), and —
  having no split transactions — the next command starts only after that.

The per-command cost is therefore independent of stride, which is exactly
why this system beats the cache-line baseline at large strides but loses
to the PVA's bank-parallel gathering by roughly a factor of three.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.serial_core import SerialCommandEngine
from repro.params import SystemParams
from repro.sdram.device import DeviceStats
from repro.sim.events import time_skip_enabled
from repro.sim.kernel import SimKernel
from repro.sim.runner import Watchdog
from repro.sim.stats import BusStats, RunResult
from repro.types import AccessType, VectorCommand

__all__ = ["GatheringSerialSDRAM"]


class GatheringSerialSDRAM:
    """Serial element-gathering memory system."""

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        name: str = "gathering-serial",
    ):
        self.params = params or SystemParams()
        self.name = name
        #: 64-bit memory bus per channel moves 8 bytes per cycle; the
        #: gathered line transfers split evenly across channels.
        self.transfer_cycles = self.params.channel_stage_cycles
        #: Flat functional memory image (word address -> value).
        self._storage = {}

    def poke(self, address: int, value: int) -> None:
        """Write one word directly into the functional memory image."""
        self._storage[address] = value

    def peek(self, address: int) -> int:
        """Read one word from the functional memory image."""
        return self._storage.get(address, 0)

    def command_cycles(self, command: VectorCommand) -> int:
        """Cycles one vector command occupies the system."""
        timing = self.params.sdram
        access_cycles = (
            timing.t_rp  # closed-page precharge at command start
            + timing.t_rcd  # first element's RAS
            + timing.cas_latency  # first element's CAS
            + command.vector.length  # one serial address issue per element
        )
        # One command cycle on the bus, then the data transfer (which the
        # serial controller does not overlap with the next command).
        return 1 + access_cycles + self.transfer_cycles

    def reset(self) -> None:
        """Discard the functional memory image.  Idempotent."""
        self._storage = {}

    def process_command(self, command: VectorCommand, start_cycle: int) -> int:
        """One command through the gathering pipeline: accumulate stats
        and functional effects, return its occupancy (the
        :class:`~repro.baselines.serial_core.SerialCommandEngine`
        cost-model hook)."""
        self._activates += 1
        self._columns += command.vector.length
        self._bus.request_cycles += 1 + command.vector.length
        self._bus.data_cycles += self.transfer_cycles
        if command.access is AccessType.READ:
            self._reads += 1
            self._elements_read += command.vector.length
            if self._read_lines is not None:
                self._read_lines.append(
                    tuple(
                        self._storage.get(a, 0)
                        for a in command.vector.addresses()
                    )
                )
        else:
            self._writes += 1
            self._elements_written += command.vector.length
            data = command.data or tuple(range(command.vector.length))
            for address, value in zip(command.vector.addresses(), data):
                self._storage[address] = value
        return self.command_cycles(command)

    def run(
        self,
        commands: Sequence[VectorCommand],
        capture_data: bool = False,
    ) -> RunResult:
        """Cost the trace serially through the shared simulation kernel."""
        self._reads = self._writes = 0
        self._elements_read = self._elements_written = 0
        self._activates = 0
        self._columns = 0
        self._bus = BusStats()
        self._read_lines = [] if capture_data else None
        watchdog = Watchdog(len(commands), system=self.name)
        engine = SerialCommandEngine(self, commands)
        kernel = SimKernel(
            watchdog=watchdog, time_skip=time_skip_enabled(self.params)
        )
        kernel.register(engine)
        exit_cycle = kernel.run(engine.done)
        cycles = max(engine.busy_until, exit_cycle)
        device = DeviceStats(
            activates=self._activates,
            precharges=self._activates,
            reads=self._columns if self._reads else 0,
            writes=0 if self._reads else self._columns,
        )
        result = RunResult(
            system=self.name,
            cycles=cycles,
            commands=len(commands),
            read_commands=self._reads,
            write_commands=self._writes,
            elements_read=self._elements_read,
            elements_written=self._elements_written,
            device=device,
            bus=self._bus,
            attribution=kernel.finalize(cycles),
        )
        result.read_lines = self._read_lines
        return result

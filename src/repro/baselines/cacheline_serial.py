"""Baseline 1: the cache-line interleaved serial SDRAM system
("conventional memory system", section 6.1).

An idealized 16-module SDRAM system optimized for cache-line fills: every
distinct cache line a vector command touches costs one fill of

    t_rcd (RAS) + cas_latency (CAS) + burst (16 data cycles on the 64-bit
    bus) = 20 cycles

with precharge optimistically overlapped and writes costed like reads,
exactly as the paper assumes.  The system "makes no attempt to gather
sparse data": whole lines cross the bus even when the application uses one
word of each, which is why its relative performance collapses as the
stride grows.

Line fills are counted over the *distinct* lines touched by each command,
in access order (consecutive elements falling in the same line hit the
line already fetched).  Commands are processed serially — this system has
no split transactions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.baselines.serial_core import SerialCommandEngine
from repro.params import SystemParams
from repro.sdram.device import DeviceStats
from repro.sim.events import time_skip_enabled
from repro.sim.kernel import SimKernel
from repro.sim.runner import Watchdog
from repro.sim.stats import BusStats, RunResult
from repro.types import AccessType, VectorCommand

__all__ = ["CacheLineSerialSDRAM"]


class CacheLineSerialSDRAM:
    """Serial line-fill memory system."""

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        name: str = "cacheline-serial",
        fill_per_element: bool = False,
    ):
        """``fill_per_element=True`` switches to the accounting implied by
        the paper's stride-19 numbers (one line fill per element, i.e. no
        intra-line reuse in the serial model); the default counts one fill
        per *distinct* line, which is the conservative-honest model.  See
        :mod:`repro.experiments.headline` for the consequences."""
        self.params = params or SystemParams()
        self.name = name
        self.fill_per_element = fill_per_element
        timing = self.params.sdram
        #: 64-bit memory bus per channel moves 8 bytes per cycle; a line
        #: burst splits evenly across channels.
        self.burst_cycles = self.params.channel_stage_cycles
        self.fill_cycles = timing.t_rcd + timing.cas_latency + self.burst_cycles
        #: Flat functional memory image (word address -> value), so the
        #: baseline is observationally comparable with the PVA systems.
        self._storage = {}

    def poke(self, address: int, value: int) -> None:
        """Write one word directly into the functional memory image."""
        self._storage[address] = value

    def peek(self, address: int) -> int:
        """Read one word from the functional memory image."""
        return self._storage.get(address, 0)

    def lines_touched(self, command: VectorCommand) -> int:
        """Line fills the command costs.

        With intra-line reuse (default): the number of distinct cache
        lines the command's elements fall in.  Without: one per element,
        capped below by the distinct count (a unit-stride command still
        fills each line once at most in either model only when reuse is
        on; per-element accounting deliberately ignores it).
        """
        if self.fill_per_element:
            return command.vector.length
        shift = self.params.cache_line_words.bit_length() - 1
        seen: Set[int] = set()
        for address in command.vector.addresses():
            seen.add(address >> shift)
        return len(seen)

    def reset(self) -> None:
        """Discard the functional memory image.  Idempotent."""
        self._storage = {}

    def process_command(self, command: VectorCommand, start_cycle: int) -> int:
        """One command's line fills: accumulate stats and functional
        effects, return the cycles it occupies the system (the
        :class:`~repro.baselines.serial_core.SerialCommandEngine`
        cost-model hook)."""
        lines = self.lines_touched(command)
        self._total_lines += lines
        self._bus.data_cycles += lines * self.burst_cycles
        self._bus.request_cycles += lines * (
            self.fill_cycles - self.burst_cycles
        )
        if command.access is AccessType.READ:
            self._reads += 1
            self._elements_read += command.vector.length
            if self._read_lines is not None:
                self._read_lines.append(
                    tuple(
                        self._storage.get(a, 0)
                        for a in command.vector.addresses()
                    )
                )
        else:
            self._writes += 1
            self._elements_written += command.vector.length
            data = command.data or tuple(range(command.vector.length))
            for address, value in zip(command.vector.addresses(), data):
                self._storage[address] = value
        return lines * self.fill_cycles

    def run(
        self,
        commands: Sequence[VectorCommand],
        capture_data: bool = False,
    ) -> RunResult:
        """Cost the trace (``fill_cycles`` per distinct line, serially)
        through the shared simulation kernel."""
        self._total_lines = 0
        self._reads = self._writes = 0
        self._elements_read = self._elements_written = 0
        self._bus = BusStats()
        self._read_lines = [] if capture_data else None
        watchdog = Watchdog(len(commands), system=self.name)
        engine = SerialCommandEngine(self, commands)
        kernel = SimKernel(
            watchdog=watchdog, time_skip=time_skip_enabled(self.params)
        )
        kernel.register(engine)
        exit_cycle = kernel.run(engine.done)
        cycles = max(engine.busy_until, exit_cycle)
        device = DeviceStats(
            activates=self._total_lines,
            precharges=self._total_lines,
            reads=self._total_lines * self.params.cache_line_words,
            writes=0,
        )
        result = RunResult(
            system=self.name,
            cycles=cycles,
            commands=len(commands),
            read_commands=self._reads,
            write_commands=self._writes,
            elements_read=self._elements_read,
            elements_written=self._elements_written,
            device=device,
            bus=self._bus,
            attribution=kernel.finalize(cycles),
        )
        result.read_lines = self._read_lines
        return result

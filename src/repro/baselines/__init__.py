"""The comparison memory systems of section 6.1."""

from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.baselines.gathering_serial import GatheringSerialSDRAM
from repro.baselines.pva_sram import make_pva_sram

__all__ = [
    "CacheLineSerialSDRAM",
    "GatheringSerialSDRAM",
    "make_pva_sram",
]

"""The benchmark kernels of Table 2.

Each kernel is a loop over strided array elements; as a memory-system
workload it is the *pattern of vector commands per cache-line block* that
matters — which arrays are read and written, in what order, and with what
element offset.  ``copy2`` and ``scale2`` are the unrolled variants of
section 6.2/6.3, grouping two consecutive commands per vector so the PVA
sees back-to-back requests to the same array.

Reference loops (L = elements, S = stride):

=========  ===========================================================
copy       ``for i: y[i] = x[i]``
saxpy      ``for i: y[i] += a * x[i]``
scale      ``for i: x[i] = a * x[i]``
swap       ``for i: reg = x[i]; x[i] = y[i]; y[i] = reg``
tridiag    ``for i: x[i] = z[i] * (y[i] - x[i-1])``   (Livermore 5)
vaxpy      ``for i: y[i] += a[i] * x[i]``
=========  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.types import AccessType

__all__ = ["ArrayAccess", "Kernel", "KERNELS", "kernel_by_name"]


@dataclass(frozen=True)
class ArrayAccess:
    """One vector command the kernel issues per block: which array, which
    direction, and an element offset (``-1`` for tridiag's ``x[i-1]``)."""

    array: str
    access: AccessType
    offset_elements: int = 0


@dataclass(frozen=True)
class Kernel:
    """A vector kernel as a per-block command pattern."""

    name: str
    arrays: Tuple[str, ...]
    pattern: Tuple[ArrayAccess, ...]
    #: Commands to the same array grouped over this many consecutive
    #: blocks (1 = no unrolling).
    unroll: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.unroll < 1:
            raise ConfigurationError(
                f"unroll must be >= 1, got {self.unroll}"
            )
        for access in self.pattern:
            if access.array not in self.arrays:
                raise ConfigurationError(
                    f"kernel {self.name}: pattern uses unknown array "
                    f"{access.array!r}"
                )

    @property
    def commands_per_block(self) -> int:
        return len(self.pattern)

    @property
    def reads_per_block(self) -> int:
        return sum(1 for a in self.pattern if a.access is AccessType.READ)

    @property
    def writes_per_block(self) -> int:
        return sum(1 for a in self.pattern if a.access is AccessType.WRITE)


def _k(name, arrays, pattern, unroll=1, description=""):
    return Kernel(
        name=name,
        arrays=arrays,
        pattern=pattern,
        unroll=unroll,
        description=description,
    )


KERNELS: Dict[str, Kernel] = {
    kernel.name: kernel
    for kernel in (
        _k(
            "copy",
            ("x", "y"),
            (
                ArrayAccess("x", AccessType.READ),
                ArrayAccess("y", AccessType.WRITE),
            ),
            description="y[i] = x[i]  (BLAS copy)",
        ),
        _k(
            "copy2",
            ("x", "y"),
            (
                ArrayAccess("x", AccessType.READ),
                ArrayAccess("y", AccessType.WRITE),
            ),
            unroll=2,
            description="copy unrolled: two consecutive commands per vector",
        ),
        _k(
            "saxpy",
            ("x", "y"),
            (
                ArrayAccess("x", AccessType.READ),
                ArrayAccess("y", AccessType.READ),
                ArrayAccess("y", AccessType.WRITE),
            ),
            description="y[i] += a * x[i]  (BLAS axpy)",
        ),
        _k(
            "scale",
            ("x",),
            (
                ArrayAccess("x", AccessType.READ),
                ArrayAccess("x", AccessType.WRITE),
            ),
            description="x[i] = a * x[i]  (BLAS scal)",
        ),
        _k(
            "scale2",
            ("x",),
            (
                ArrayAccess("x", AccessType.READ),
                ArrayAccess("x", AccessType.WRITE),
            ),
            unroll=2,
            description="scale unrolled: two consecutive commands per vector",
        ),
        _k(
            "swap",
            ("x", "y"),
            (
                ArrayAccess("x", AccessType.READ),
                ArrayAccess("y", AccessType.READ),
                ArrayAccess("x", AccessType.WRITE),
                ArrayAccess("y", AccessType.WRITE),
            ),
            description="x[i] <-> y[i]  (BLAS swap)",
        ),
        _k(
            "tridiag",
            ("x", "y", "z"),
            (
                ArrayAccess("z", AccessType.READ),
                ArrayAccess("y", AccessType.READ),
                ArrayAccess("x", AccessType.READ, offset_elements=-1),
                ArrayAccess("x", AccessType.WRITE),
            ),
            description="x[i] = z[i] * (y[i] - x[i-1])  (Livermore loop 5)",
        ),
        _k(
            "vaxpy",
            ("a", "x", "y"),
            (
                ArrayAccess("a", AccessType.READ),
                ArrayAccess("x", AccessType.READ),
                ArrayAccess("y", AccessType.READ),
                ArrayAccess("y", AccessType.WRITE),
            ),
            description="y[i] += a[i] * x[i]  (vector axpy)",
        ),
    )
}


def kernel_by_name(name: str) -> Kernel:
    """Look up a kernel; raise with the available names on a typo."""
    try:
        return KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None

"""Trace (de)serialization: command streams as JSON documents.

A downstream user wants to capture a workload once and replay it across
configurations, or generate traces outside Python.  The format is
deliberately plain::

    {
      "version": 1,
      "commands": [
        {"kind": "vector", "access": "read", "base": 0, "stride": 19,
         "length": 32, "tag": "copy.x.read[0]"},
        {"kind": "vector", "access": "write", "base": 64, "stride": 1,
         "length": 32, "data": [1, 2, ...]},
        {"kind": "explicit", "access": "read", "addresses": [5, 99, 3],
         "broadcast_cycles": 3}
      ]
    }

``dumps``/``loads`` work on strings, ``save``/``load`` on paths.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import VectorSpecError
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

__all__ = ["dumps", "loads", "save", "load"]

_FORMAT_VERSION = 1

AnyCommand = Union[VectorCommand, ExplicitCommand]


def _encode(command: AnyCommand) -> dict:
    if isinstance(command, ExplicitCommand):
        record = {
            "kind": "explicit",
            "access": command.access.value,
            "addresses": list(command.addresses),
            "broadcast_cycles": command.broadcast_cycles,
        }
    else:
        record = {
            "kind": "vector",
            "access": command.access.value,
            "base": command.vector.base,
            "stride": command.vector.stride,
            "length": command.vector.length,
        }
    if command.tag is not None:
        record["tag"] = command.tag
    if command.data is not None:
        record["data"] = list(command.data)
    return record


def _decode(record: dict) -> AnyCommand:
    try:
        kind = record["kind"]
        access = AccessType(record["access"])
    except (KeyError, ValueError) as error:
        raise VectorSpecError(f"malformed trace record: {record!r}") from error
    tag = record.get("tag")
    data = tuple(record["data"]) if "data" in record else None
    if kind == "vector":
        try:
            vector = Vector(
                base=record["base"],
                stride=record["stride"],
                length=record["length"],
            )
        except KeyError as error:
            raise VectorSpecError(
                f"vector record missing field: {record!r}"
            ) from error
        return VectorCommand(vector=vector, access=access, tag=tag, data=data)
    if kind == "explicit":
        try:
            return ExplicitCommand(
                addresses=tuple(record["addresses"]),
                access=access,
                broadcast_cycles=record["broadcast_cycles"],
                tag=tag,
                data=data,
            )
        except KeyError as error:
            raise VectorSpecError(
                f"explicit record missing field: {record!r}"
            ) from error
    raise VectorSpecError(f"unknown command kind {kind!r}")


def dumps(commands: Sequence[AnyCommand]) -> str:
    """Serialize a command trace to a JSON string."""
    document = {
        "version": _FORMAT_VERSION,
        "commands": [_encode(c) for c in commands],
    }
    return json.dumps(document, indent=2)


def loads(text: str) -> List[AnyCommand]:
    """Parse a JSON trace; validates structure and command fields."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise VectorSpecError(f"trace is not valid JSON: {error}") from error
    if not isinstance(document, dict) or "commands" not in document:
        raise VectorSpecError("trace document must contain 'commands'")
    version = document.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise VectorSpecError(
            f"unsupported trace version {version} "
            f"(this library reads version {_FORMAT_VERSION})"
        )
    return [_decode(record) for record in document["commands"]]


def save(commands: Sequence[AnyCommand], path: Union[str, Path]) -> Path:
    """Write a trace file; returns the path."""
    path = Path(path)
    path.write_text(dumps(commands) + "\n")
    return path


def load(path: Union[str, Path]) -> List[AnyCommand]:
    """Read a trace file."""
    return loads(Path(path).read_text())

"""Vector kernels (Table 2) and command-trace generation (section 6.2)."""

from repro.kernels.kernels import (
    KERNELS,
    Kernel,
    kernel_by_name,
)
from repro.kernels.traces import (
    ALIGNMENTS,
    Alignment,
    alignment_by_name,
    build_trace,
)

__all__ = [
    "KERNELS",
    "Kernel",
    "kernel_by_name",
    "ALIGNMENTS",
    "Alignment",
    "alignment_by_name",
    "build_trace",
]

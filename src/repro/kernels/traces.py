"""Command-trace generation for the evaluation (section 6.2).

The experiments run 1024-element application vectors chunked into
cache-line-sized commands (32 elements), at strides {1, 2, 4, 8, 16, 19}
and five *relative vector alignments* — "placement of the base addresses
within memory banks, within internal banks for a given SDRAM, and within
rows or pages for a given internal bank".

Arrays are laid out in disjoint regions separated by a multiple of the
full bank x internal-bank x row geometry, so that with zero alignment
offset every array's base lands on the same bank, the same internal bank
and the same row offset; each named alignment then perturbs the bases to
steer them to different banks / internal banks / conflicting rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.kernels.kernels import Kernel
from repro.params import SystemParams
from repro.types import AccessType, Vector, VectorCommand

__all__ = [
    "Alignment",
    "ALIGNMENTS",
    "alignment_by_name",
    "build_trace",
    "array_bases",
]

#: Words reserved before the first array so that negative element offsets
#: (tridiag's ``x[i-1]``) stay at non-negative addresses.
_LEAD_WORDS = 64


@dataclass(frozen=True)
class Alignment:
    """One relative-alignment setting: array ``i`` is displaced by
    ``offset_fn(i, params)`` words from its region base."""

    name: str
    description: str
    offset_fn: Callable[[int, SystemParams], int]

    def offset(self, array_index: int, params: SystemParams) -> int:
        return self.offset_fn(array_index, params)


def _same_everything(i: int, p: SystemParams) -> int:
    return 0


def _next_bank(i: int, p: SystemParams) -> int:
    return i  # one word: consecutive banks


def _next_line(i: int, p: SystemParams) -> int:
    return i * p.cache_line_words  # same bank, nearby columns


def _next_internal_bank(i: int, p: SystemParams) -> int:
    # One full row per bank advances the row sequence by one, which the
    # device geometry maps to the next internal bank.
    return i * p.num_banks * p.sdram.row_words


def _row_conflict(i: int, p: SystemParams) -> int:
    # Advance the row sequence by a full internal-bank rotation: the same
    # internal bank, a different row -- the worst case.
    return i * p.num_banks * p.sdram.row_words * p.sdram.internal_banks


ALIGNMENTS: List[Alignment] = [
    Alignment(
        "aligned",
        "all bases on the same bank, internal bank and row offset",
        _same_everything,
    ),
    Alignment(
        "bank+1",
        "bases staggered by one word: consecutive memory banks",
        _next_bank,
    ),
    Alignment(
        "line+1",
        "bases staggered by one cache line: same bank, nearby columns",
        _next_line,
    ),
    Alignment(
        "ibank+1",
        "bases staggered by one row pitch: same bank, next internal bank",
        _next_internal_bank,
    ),
    Alignment(
        "row-conflict",
        "bases staggered to the same internal bank but different rows",
        _row_conflict,
    ),
]


def alignment_by_name(name: str) -> Alignment:
    """Look up one of the five evaluation alignments by its name."""
    for alignment in ALIGNMENTS:
        if alignment.name == name:
            return alignment
    raise ConfigurationError(
        f"unknown alignment {name!r}; available: "
        f"{[a.name for a in ALIGNMENTS]}"
    )


def _region_words(elements: int, max_stride: int, params: SystemParams) -> int:
    """Per-array region size: spans the largest vector plus alignment
    head-room, rounded up to a whole bank x internal-bank x row period so
    zero-offset bases are congruent in every geometric dimension."""
    period = (
        params.num_banks * params.sdram.row_words * params.sdram.internal_banks
    )
    need = (
        _LEAD_WORDS
        + elements * max_stride
        + period  # head-room for the largest alignment offset
    )
    regions = (need + period - 1) // period
    return (regions + 1) * period


def array_bases(
    kernel: Kernel,
    stride: int,
    elements: int,
    params: SystemParams,
    alignment: Alignment,
    max_stride: Optional[int] = None,
) -> dict:
    """Base word address of each of the kernel's arrays under
    ``alignment``.  ``max_stride`` (default: ``stride``) sizes the regions
    so traces of different strides can share a layout."""
    region = _region_words(elements, max_stride or stride, params)
    bases = {}
    for i, name in enumerate(kernel.arrays):
        bases[name] = _LEAD_WORDS + i * region + alignment.offset(i, params)
    return bases


def build_trace(
    kernel: Kernel,
    stride: int,
    params: Optional[SystemParams] = None,
    elements: int = 1024,
    alignment: Optional[Alignment] = None,
) -> List[VectorCommand]:
    """Generate the vector-command trace one kernel run produces.

    The ``elements``-element application vectors are chunked into
    cache-line commands of ``params.cache_line_words`` elements; per chunk
    (or per ``kernel.unroll`` chunks, grouped by array) the kernel's
    pattern of reads and writes is emitted in program order.
    """
    params = params or SystemParams()
    alignment = alignment or ALIGNMENTS[0]
    if stride <= 0:
        raise ConfigurationError(f"stride must be positive, got {stride}")
    chunk = params.cache_line_words
    if elements % chunk:
        raise ConfigurationError(
            f"elements ({elements}) must be a multiple of the command "
            f"length ({chunk})"
        )
    bases = array_bases(kernel, stride, elements, params, alignment)
    blocks = elements // chunk
    commands: List[VectorCommand] = []
    for group_start in range(0, blocks, kernel.unroll):
        group = range(group_start, min(group_start + kernel.unroll, blocks))
        for access in kernel.pattern:
            for block in group:
                first_element = block * chunk + access.offset_elements
                base = bases[access.array] + first_element * stride
                commands.append(
                    VectorCommand(
                        vector=Vector(base=base, stride=stride, length=chunk),
                        access=access.access,
                        tag=f"{kernel.name}.{access.array}"
                        f".{access.access.value}[{block}]",
                    )
                )
    return commands

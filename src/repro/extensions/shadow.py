"""Impulse-style shadow address spaces (section 3.2).

The PVA unit was designed in the context of the Impulse memory
controller, which lets software create a *shadow* region whose dense
addresses remap to a strided view of real memory: "When the processor
accesses data in the shadow space, the memory controller does
scatter/gather accesses from the real memory region that backs the shadow
address region and compacts the strided data into dense cache lines."

:class:`ShadowRegion` implements that remapping layer on top of the PVA
unit: a dense shadow word ``base + i`` corresponds to the physical word
``target_base + i * stride``, so an ordinary cache-line fill of the
shadow region becomes exactly one base-stride vector command — the
mechanism by which the processor side never needs new instructions to
exploit the PVA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import AddressError, ConfigurationError
from repro.params import SystemParams
from repro.types import AccessType, Vector, VectorCommand

__all__ = ["ShadowRegion", "ShadowSpace"]


@dataclass(frozen=True)
class ShadowRegion:
    """One configured shadow mapping: dense shadow words onto a strided
    view of physical memory."""

    shadow_base: int
    target_base: int
    stride: int
    length: int

    def __post_init__(self) -> None:
        if self.shadow_base < 0 or self.target_base < 0:
            raise ConfigurationError("shadow and target bases must be >= 0")
        if self.stride <= 0:
            raise ConfigurationError(
                f"shadow stride must be positive, got {self.stride}"
            )
        if self.length <= 0:
            raise ConfigurationError(
                f"shadow length must be positive, got {self.length}"
            )

    @property
    def shadow_end(self) -> int:
        return self.shadow_base + self.length

    def contains(self, shadow_address: int) -> bool:
        return self.shadow_base <= shadow_address < self.shadow_end

    def translate(self, shadow_address: int) -> int:
        """Physical word backing one shadow word."""
        if not self.contains(shadow_address):
            raise AddressError(
                f"shadow address {shadow_address} outside region "
                f"[{self.shadow_base}, {self.shadow_end})"
            )
        return self.target_base + (shadow_address - self.shadow_base) * self.stride

    def line_fill_command(
        self,
        shadow_line_address: int,
        params: SystemParams,
        access: AccessType = AccessType.READ,
        data=None,
    ) -> VectorCommand:
        """The vector command a cache-line fill of the shadow space turns
        into at the memory controller.

        ``shadow_line_address`` must be line-aligned inside the region;
        the fill's final elements are clamped to the region length (a
        partial last line gathers only mapped words).
        """
        line = params.cache_line_words
        if shadow_line_address % line:
            raise AddressError(
                f"shadow line address {shadow_line_address} is not aligned "
                f"to {line} words"
            )
        if not self.contains(shadow_line_address):
            raise AddressError(
                f"shadow line {shadow_line_address} outside region"
            )
        count = min(line, self.shadow_end - shadow_line_address)
        return VectorCommand(
            vector=Vector(
                base=self.translate(shadow_line_address),
                stride=self.stride,
                length=count,
            ),
            access=access,
            tag=f"shadow[{shadow_line_address}]",
            data=data,
        )


class ShadowSpace:
    """The memory controller's table of configured shadow regions.

    Regions are configured "either directly by the programmer or by a
    smart compiler"; the controller consults the table on every shadow
    access.  Regions may not overlap in shadow space (they may freely
    alias in physical space — two views of the same data are the point).
    """

    def __init__(self) -> None:
        self._regions: List[ShadowRegion] = []

    def configure(self, region: ShadowRegion) -> None:
        for existing in self._regions:
            lo = max(existing.shadow_base, region.shadow_base)
            hi = min(existing.shadow_end, region.shadow_end)
            if lo < hi:
                raise ConfigurationError(
                    f"shadow region at {region.shadow_base} overlaps the "
                    f"region at {existing.shadow_base}"
                )
        self._regions.append(region)

    def region_of(self, shadow_address: int) -> ShadowRegion:
        for region in self._regions:
            if region.contains(shadow_address):
                return region
        raise AddressError(
            f"shadow address {shadow_address} is not mapped by any region"
        )

    def translate(self, shadow_address: int) -> int:
        return self.region_of(shadow_address).translate(shadow_address)

    def fill_commands(
        self,
        shadow_base: int,
        length: int,
        params: SystemParams,
        access: AccessType = AccessType.READ,
    ) -> List[VectorCommand]:
        """Commands for a dense shadow read/write of ``length`` words
        starting at a line-aligned shadow address."""
        line = params.cache_line_words
        commands = []
        address = shadow_base
        end = shadow_base + length
        while address < end:
            region = self.region_of(address)
            commands.append(
                region.line_fill_command(address, params, access=access)
            )
            address += line
        return commands

    def __len__(self) -> int:
        return len(self._regions)

"""Vector-indirect scatter/gather (chapter 7).

The paper's two-phase scheme: "(i) loading the indirection vector into the
appropriate bank controllers and then (ii) loading the appropriate vector
elements.  Loading the indirection vector is simply a unit-stride vector
load operation.  After the indirection vector is loaded, its contents can
be broadcast across the vector bus.  Each bank controller can easily
determine which elements of the vector reside in its SDRAM by snooping
this broadcast and performing a simple bit-mask operation on each address
broadcast (two per cycle)."

These helpers build the corresponding commands:

* :func:`load_indirection_vector` — phase (i), an ordinary unit-stride
  :class:`~repro.types.VectorCommand`;
* :func:`indirect_gather` / :func:`indirect_scatter` — phase (ii), an
  :class:`~repro.types.ExplicitCommand` whose request-phase bus cost
  reflects the two-addresses-per-cycle broadcast.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import VectorSpecError
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

__all__ = [
    "load_indirection_vector",
    "indirect_gather",
    "indirect_scatter",
]

#: Addresses snooped per bus cycle during the indirection broadcast.
_ADDRESSES_PER_CYCLE = 2


def load_indirection_vector(base: int, length: int) -> VectorCommand:
    """Phase (i): the unit-stride load that brings the indirection vector
    into the PVA unit."""
    return VectorCommand(
        vector=Vector(base=base, stride=1, length=length),
        access=AccessType.READ,
        tag="indirection-load",
    )


def _broadcast_cost(length: int) -> int:
    """One command cycle plus the snooped address stream."""
    return 1 + (length + _ADDRESSES_PER_CYCLE - 1) // _ADDRESSES_PER_CYCLE


def indirect_gather(
    addresses: Sequence[int], tag: Optional[str] = None
) -> ExplicitCommand:
    """Phase (ii) for a read: gather the words at ``addresses`` (the
    indirection vector's contents) into a dense line."""
    if not addresses:
        raise VectorSpecError("indirect gather needs at least one address")
    return ExplicitCommand(
        addresses=tuple(addresses),
        access=AccessType.READ,
        broadcast_cycles=_broadcast_cost(len(addresses)),
        tag=tag or "indirect-gather",
    )


def indirect_scatter(
    addresses: Sequence[int],
    data: Optional[Sequence[int]] = None,
    tag: Optional[str] = None,
) -> ExplicitCommand:
    """Phase (ii) for a write: scatter a dense line's words to
    ``addresses``."""
    if not addresses:
        raise VectorSpecError("indirect scatter needs at least one address")
    return ExplicitCommand(
        addresses=tuple(addresses),
        access=AccessType.WRITE,
        broadcast_cycles=_broadcast_cost(len(addresses)),
        tag=tag or "indirect-scatter",
        data=tuple(data) if data is not None else None,
    )

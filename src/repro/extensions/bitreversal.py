"""Bit-reversed application vectors (chapter 7).

FFT bit-reversal reorders element ``i`` to position ``reverse(i)`` over
some number of low-order address bits — a pattern with "extremely bad
cache locality for large data sets" that a vector-aware memory controller
can gather/scatter directly: "reversing some number of low order bits of
the address and using the new address to access memory, incrementing the
original address and repeating the address reversal till a cache line
worth of data is fetched".

The paper notes the operation "is inherently sequential for word-
interleaved memory systems": the addresses must be expanded one (or two)
per cycle before the banks can work, so the command's request-phase cost
scales with the line length — the same cost model as the indirection
broadcast.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import VectorSpecError
from repro.types import AccessType, ExplicitCommand

__all__ = ["bit_reverse", "bit_reversal_addresses", "bit_reversal_gather"]

#: Addresses expanded per bus cycle (matches the indirection snoop rate).
_ADDRESSES_PER_CYCLE = 2


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value`` (upper bits must be 0)."""
    if bits < 0:
        raise VectorSpecError(f"bits must be >= 0, got {bits}")
    if value >> bits:
        raise VectorSpecError(
            f"value {value} does not fit in {bits} bits"
        )
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reversal_addresses(
    base: int, bits: int, start: int = 0, count: Optional[int] = None
) -> List[int]:
    """Word addresses of a bit-reversed gather.

    Element ``i`` (``start <= i < start + count``) is read from
    ``base + bit_reverse(i, bits)`` — the address stream a memory
    controller generates by incrementing ``i`` and reversing.
    """
    size = 1 << bits
    if count is None:
        count = size - start
    if not 0 <= start <= start + count <= size:
        raise VectorSpecError(
            f"range [{start}, {start + count}) outside the {size}-element "
            "bit-reversal domain"
        )
    return [base + bit_reverse(i, bits) for i in range(start, start + count)]


def bit_reversal_gather(
    base: int,
    bits: int,
    start: int = 0,
    count: Optional[int] = None,
    tag: Optional[str] = None,
) -> ExplicitCommand:
    """One cache-line-sized chunk of an FFT bit-reversal gather."""
    addresses = bit_reversal_addresses(base, bits, start, count)
    return ExplicitCommand(
        addresses=tuple(addresses),
        access=AccessType.READ,
        broadcast_cycles=1
        + (len(addresses) + _ADDRESSES_PER_CYCLE - 1) // _ADDRESSES_PER_CYCLE,
        tag=tag or f"bitrev-gather[{start}:{start + len(addresses)}]",
    )

"""Future-work extensions the paper sketches in chapter 7: vector-indirect
scatter/gather and bit-reversed application vectors."""

from repro.extensions.indirect import (
    indirect_gather,
    indirect_scatter,
    load_indirection_vector,
)
from repro.extensions.bitreversal import (
    bit_reverse,
    bit_reversal_addresses,
    bit_reversal_gather,
)
from repro.extensions.shadow import ShadowRegion, ShadowSpace

__all__ = [
    "ShadowRegion",
    "ShadowSpace",
    "indirect_gather",
    "indirect_scatter",
    "load_indirection_vector",
    "bit_reverse",
    "bit_reversal_addresses",
    "bit_reversal_gather",
]

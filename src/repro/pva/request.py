"""Bank-controller request records (Register File entries).

A :class:`BCRequest` is what the Request FIFO / Register File of a bank
controller holds between the FirstHit Predict broadcast and the access
scheduler's dequeue: the vector command, the subvector this bank owns, the
"address calculation complete" (ACC) flag and the cycle at which the entry
becomes visible to the scheduler (which encodes the FHC latency and the
bypass paths of section 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.subvector import SubVector
from repro.types import Vector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pva.schedule import BankSchedule

__all__ = ["BCRequest"]


@dataclass(slots=True)
class BCRequest:
    """One vector request as seen by a single bank controller."""

    txn_id: int
    vector: Optional[Vector]
    is_write: bool
    #: Subvector descriptor for base-stride requests; ``None`` when the
    #: request carries an explicit address list instead.
    sub: Optional[SubVector]
    #: Local word index (bank-internal address) of the first element.
    local_first: int
    #: Local word step between consecutive owned elements.
    local_step: int
    #: Address calculation complete: set immediately by the FHP for
    #: power-of-two strides, later by the FHC otherwise.
    acc: bool
    #: First cycle at which the access scheduler may dequeue this entry.
    ready_cycle: int
    #: Write data for the whole command line, indexed by vector index
    #: (None for reads).
    write_line: Optional[Tuple[int, ...]] = None
    #: For explicit scatter/gather commands (vector-indirect,
    #: bit-reversal): this bank's ``(local_word, element_index)`` pairs in
    #: element order.  ``None`` for base-stride requests, which the vector
    #: context expands arithmetically instead.
    explicit: Optional[Tuple[Tuple[int, int], ...]] = None
    #: Broadcast-time hit-schedule table (:mod:`repro.pva.schedule`):
    #: indices, local words and decoded device coordinates precomputed as
    #: flat arrays.  ``None`` selects the incremental expansion path.
    schedule: Optional["BankSchedule"] = None

    @property
    def count(self) -> int:
        if self.schedule is not None:
            return self.schedule.count
        if self.explicit is not None:
            return len(self.explicit)
        return self.sub.count

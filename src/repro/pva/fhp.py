"""FirstHit Predict (FHP) and FirstHit Calculate (FHC) units.

The FHP watches vector requests on the BC bus and decides, in the broadcast
cycle, whether any element of the request hits this bank (a PLA lookup,
section 5.2.2).  For power-of-two strides it also completes the FirstHit
*address* computation — a shift and mask — so the request enters the
Request FIFO with its ACC flag already set.

For other strides the FirstHit address needs ``B + S * K_i``: a multiply
and add that the synthesized prototype completes in two cycles.  That is
the FHC's job; it scans newly queued Register File entries whose ACC flag
is clear and fills in the address.  Because the FHC runs in parallel with
the access scheduler, its latency is completely hidden whenever the
scheduler is busy; the bypass path of section 5.2.3 removes the
write-back cycle when the bank controller is otherwise idle.
"""

from __future__ import annotations

from typing import Optional

from repro.core.decode import BankDecoder
from repro.core.pla import K1PLA
from repro.core.subvector import SubVector
from repro.params import SystemParams
from repro.types import Vector

__all__ = ["FirstHitPredictor", "FirstHitCalculator"]


class FirstHitPredictor:
    """Per-bank FirstHit logic: PLA lookup + shift/mask address path.

    One instance per bank controller; the PLA contents depend only on the
    bank count, so all instances share a :class:`~repro.core.pla.K1PLA`.
    """

    def __init__(self, bank: int, params: SystemParams, pla: K1PLA):
        self.bank = bank
        self.params = params
        self.pla = pla
        self._decoder = BankDecoder(num_banks=params.num_banks, block_words=1)

    def predict(self, vector: Vector) -> Optional[SubVector]:
        """Evaluate a broadcast request: the subvector this bank owns, or
        ``None`` when no element hits here.

        Mirrors the hardware steps of section 4.2: decode the base bank,
        look up ``(s, delta, K1)``, test the bank distance against
        ``2**s``, and form ``K_i`` with a multiply and mask.
        """
        b0 = self._decoder.bank_of(vector.base)
        d = (self.bank - b0) % self.params.num_banks
        k = self.pla.first_hit_index(vector.stride, d)
        if k is None or k >= vector.length:
            return None
        entry = self.pla.entry(vector.stride)
        count = (vector.length - 1 - k) // entry.delta + 1
        return SubVector(
            bank=self.bank,
            first_index=k,
            delta=entry.delta,
            count=count,
            first_address=vector.base + vector.stride * k,
            address_step=vector.stride * entry.delta,
        )

    def stride_is_power_of_two(self, stride: int) -> bool:
        """Can the FHP complete the address itself (shift and mask)?"""
        return self.pla.entry(stride).power_of_two

    def local_address(self, word_address: int) -> int:
        """Bank-internal word index of a global word address."""
        return word_address >> self.params.bank_bits

    def local_step(self, sub: SubVector) -> int:
        """Local word step between consecutive owned elements.

        ``S * delta`` is always a multiple of the bank count (theorem 4.4's
        proof), so the division is exact.
        """
        return sub.address_step >> self.params.bank_bits


class FirstHitCalculator:
    """The serial multiply-and-add unit for non-power-of-two strides.

    Models occupancy only: requests are processed in arrival order, each
    taking ``fhc_latency`` cycles, overlapping scheduler activity.  The
    actual arithmetic was already performed (functionally) by the FHP
    prediction; the FHC determines *when* the result becomes visible.
    """

    def __init__(self, params: SystemParams):
        self.params = params
        self._busy_until = 0
        self.calculations = 0

    def schedule(self, arrival_cycle: int, bank_idle: bool) -> int:
        """Cycle at which the request's ACC flag becomes visible to the
        scheduler.

        ``bank_idle`` enables the FHC-to-VC bypass path: with no other
        outstanding request, the result feeds the last vector context
        directly instead of being written back through the register file,
        saving one cycle (section 5.2.3).
        """
        start = max(arrival_cycle, self._busy_until)
        finish = start + self.params.fhc_latency
        self._busy_until = finish
        self.calculations += 1
        if self.params.bypass_paths and bank_idle:
            return finish
        return finish + 1  # register-file write-back cycle

"""Closed-form broadcast-window resolution (``sim_mode="window"``).

The SoA automaton (:mod:`repro.pva.soa`, ``sim_mode="soa"``) made bank
events *cheap*; this backend removes them.  Between broadcasts a bank's
service timeline is fully determined by its precomputed
:class:`~repro.pva.schedule.BankSchedule` and the live restimer
deadlines: the schedule's ``run_starts``/``run_lengths`` segments say
which same-row runs will issue, and each run costs at most one
precharge, at most one activate, and then streams its columns back to
back.  So instead of probing candidate cycles one by one, the window
backend charges one whole service chain **arithmetically** per
resolution:

* partition the remaining schedule into same-row runs (precomputed at
  broadcast time, the `schedule.py` run segments);
* walk the runs once, charging each a precharge/activate/CAS chain as a
  prefix sum over run lengths against *virtual* copies of the restimer
  deadlines (``max(cursor, timer)`` per row operation, ``max(cursor,
  column-ready, pin-turnaround)`` for the first column of a run — the
  same values the event walk's probe/jump loop converges to, computed
  directly);
* derive the chain's completion cycle, then commit everything at once:
  storage movement, staging/transaction accounting, device counters,
  timer state, and the busy/stalled ledger as **bulk deltas** through
  the kernel's :meth:`~repro.sim.kernel.SimKernel.bulk_account` API;
* leave ``bound[b]`` at the completion cycle so the kernel fast-forwards
  to the next front-end event in one jump.

**Mid-chain dequeues.**  The event walk admits the next FIFO entry into
the context window at the first probe at or after its ready cycle — and
because failing probes jump through the head's ready cycle and column
bursts are clipped at it, that probe lands at exactly ``max(ready,
previous probe + 1)``.  The closed form therefore *materializes* those
dequeues instead of rejecting the chain: each admitted entry joins the
window at commit time, its dequeue probe is charged one busy cycle when
it coincides with no chain action, and the next resolution serves it as
the new oldest context.  This is exact only while the younger contexts
are provably **inert** during the current chain, which the gate below
enforces; the common case — every in-flight request targeting the same
internal bank on mutually distinct rows, precisely the back-to-back
read/write pattern of the paper's dense-stride workloads — passes, and
each context's chain is then charged sequentially at full closed-form
speed.  A younger context that could act is one that shares an internal
bank *and* a row with the chain (it could slip columns into the open
row) or sits on a different internal bank (its row operations could
overlap the chain): both fall back.  One refinement keeps the common
write-after-read pattern in closed form: a dequeue whose row equals the
chain's *initially* open row is still inert when the chain precharges
that row strictly before the admission probe — the row never reopens
(it is gated out of the chain's run rows), so nothing is left to
protect or slip into.

**Eligibility gating** is dynamic and conservative, in the spirit of
``soa_eligible`` but per *chain* rather than per run:

* the oldest service unit resolves alone; younger in-flight or
  mid-chain-admitted contexts must be inert — same internal bank as the
  whole remaining chain, current row distinct from the initially open
  row and from every row the chain opens (an inert context always loses
  the same-timer race to an older one, and ``bank_hit_predict``
  protects open rows mid-run);
* a dequeue the event walk would defer on a full context window stops
  materialization at that entry (the walk admits it only after this
  chain commits, which the next resolution reproduces);
* no refresh deadline at or inside the chain (every charged cycle must
  land strictly before ``nr[b]``);
* the whole chain fits inside the run-ahead horizon ``h`` (a chain that
  crosses it could be interleaved by the next broadcast);
* the paper row policy (or a rowless SRAM device): other policies take
  per-access ``observe_access`` side effects the arithmetic does not
  model.

A rejected chain falls back, bit-exactly, to the inherited SoA event
walk for the current batch (``SoaBankAutomaton._run_bank``); the next
batch tries the closed form again.  The same fallback route is used as
a deliberate *delegation* for chains the walk already resolves in O(1):
a single remaining same-row run on an already-open row needs no row
operation, and the walk's burst path prices it in one probe — the chain
machinery here would only add constant overhead (this is why
same-array read-modify-write kernels like ``scale`` route most chains
to the walk by design).  A per-bank streak predictor amortizes even
the *attempt*: after a few consecutive pure-fallback batches the bank
stops probing the closed form and re-probes only periodically, so
delegation-heavy regimes pay the walk's cost and little else.
Write–read bus turnarounds are not
a fallback case — the pin-polarity penalty only ever applies to the
first column of a chain (a context is uniformly read or write), where
it is charged exactly.  ``capture_data`` runs fall back to the SoA/
object backends at system level (:meth:`PVAMemorySystem.run`).

**Exactness argument.**  Within a chain the only external actors are
FIFO dequeues, whose probe cycles are computed exactly (above), and
inert younger contexts, which by the gate can neither win a row-timer
race against an older context nor sit on an open row.  The event walk
is then a deterministic sequence of probe/jump steps whose action
cycles are exactly ``max(previous floor, blocking timer)`` — the closed
form computes those maxima directly instead of walking to them.  Two
path subtleties are charged explicitly rather than gated away: a
mid-chain dequeue degrades the walk's column bursts into single-column
issue, which is cycle- and counter-identical under the paper policy
(the per-column ``_decide_ap`` reproduces the burst path's run-end
auto-precharge decisions); and once a younger mismatched context is in
flight, the final column's auto-precharge is forced closed through
``bank_close_predict`` instead of consulting the per-bank predictor.
Every rejection condition corresponds to a case where the event walk
would genuinely interleave another actor into the chain; rejecting
mutates nothing, so the fallback replays the identical state.  The
differential suite (``tests/sim/test_window_equivalence.py``) pins
cycles *and* attribution ledgers against the tick/skip/precompute/soa
backends.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import ProtocolError
from repro.pva.soa import (
    C_FIB,
    C_FROW,
    C_IB,
    C_IDX,
    C_ISSUED,
    C_LINE,
    C_LW,
    C_MONO,
    C_POS,
    C_REM,
    C_RLENS,
    C_ROW,
    C_RSTARTS,
    C_TXN,
    C_W,
    R_LINE,
    R_READY,
    R_SCHED,
    R_TXN,
    R_W,
    SoaBankAutomaton,
    soa_eligible,
)

__all__ = ["WindowBankAutomaton", "window_eligible"]

# _resolve outcomes.
_RESOLVED = 0  # chain committed; bound[b] advanced past it
_BLOCKED = 1  # no event possible this batch; bound[b] updated
_FALLBACK = 2  # outside the closed form; nothing mutated

# Delegation-streak predictor (see _run_bank): after _STREAK_MIN
# consecutive pure-fallback batches a bank stops attempting the closed
# form and re-probes it only every _STREAK_PERIOD-th batch.
_STREAK_MIN = 4
_STREAK_PERIOD = 8


def window_eligible(banks) -> bool:
    """May this run use the closed-form window backend?

    Structurally identical to :func:`~repro.pva.soa.soa_eligible` — the
    closed form's extra conditions (refresh deadlines inside a chain,
    non-inert context overlap, horizon crossings, non-paper row
    policies) are *dynamic*, gated per chain with a bit-exact fallback
    to the inherited event walk, so they cannot be decided up front.
    """
    return soa_eligible(banks)


class WindowBankAutomaton(SoaBankAutomaton):
    """The SoA automaton with a closed-form fast path per service chain.

    Construction, broadcasts, writeback and the ledger finalization are
    inherited unchanged; only the per-bank batch stepping is overridden
    to try the arithmetic resolution first.  Needs the owning
    :class:`~repro.sim.kernel.SimKernel` to deposit bulk ledger deltas.
    """

    def __init__(self, banks, front, bus, params, kernel):
        super().__init__(banks, front, bus, params)
        self._kernel = kernel
        # Per-bank count of consecutive batches whose first probe fell
        # back without resolving anything.  Banks in a steady delegation
        # regime (open-row chains, non-paper policies) skip the resolve
        # attempt after ``_STREAK_MIN`` such batches and re-probe every
        # ``_STREAK_PERIOD``-th one, so the attempt overhead amortizes
        # away; the walk is bit-exact either way, so the predictor can
        # only shift where time is spent, never what happens.
        self._fb_streak = [0] * params.num_banks

    # ------------------------------------------------------------- #
    # Batch stepping
    # ------------------------------------------------------------- #

    def _run_bank(self, b: int, now: int, h: int) -> bool:
        """Resolve whole service chains while the closed form applies;
        delegate the remainder of the batch to the inherited event walk
        on the first chain it does not cover."""
        streak = self._fb_streak
        s = streak[b]
        if s >= _STREAK_MIN and s % _STREAK_PERIOD:
            # Steady delegation regime: go straight to the walk and
            # only re-probe the closed form every _STREAK_PERIOD-th
            # batch (s is kept growing so the modulus keeps cycling).
            streak[b] = s + 1
            return SoaBankAutomaton._run_bank(self, b, now, h)
        processed = False
        bound = self.bound
        resolve = self._resolve
        while bound[b] < h:
            outcome = resolve(b, now, h)
            if outcome == _RESOLVED:
                processed = True
                continue
            if outcome == _BLOCKED:
                if processed:
                    streak[b] = 0
                return processed
            # A batch that resolved chains before falling back still
            # counts for the closed form; only pure-fallback batches
            # feed the delegation streak.
            streak[b] = 0 if processed else s + 1
            return SoaBankAutomaton._run_bank(self, b, now, h) or processed
        if processed:
            streak[b] = 0
        return processed

    def _resolve(self, b: int, now: int, h: int) -> int:
        """Try to charge bank ``b``'s oldest service chain arithmetically.

        Pure-compute-then-commit: every timer is copied into virtual
        state and every charged cycle validated against the refresh
        deadline and the horizon *before* anything mutates, so a
        rejected chain leaves the bank exactly as the event walk
        expects to find it.
        """
        t = self.bound[b]
        if t >= h:
            return _BLOCKED
        rqf = self._rqf[b]
        win = self._win[b]
        deadline = self.nr[b]
        dequeued = False
        nwin0 = len(win)
        if win:
            if t >= deadline:
                return _FALLBACK  # refresh due first
            vc = win[0]
            td = t
            # The first FIFO admission may land on the first probe.
            prev_d = t - 1
            ibs = vc[C_IB]
            rows = vc[C_ROW]
            starts = vc[C_RSTARTS]
            pos = vc[C_POS]
        elif rqf:
            head = rqf[0]
            ready = head[R_READY]
            td = ready if ready > t else t
            if td >= deadline:
                return _FALLBACK  # refresh fires before the dequeue
            if td >= h:
                # Nothing can happen this batch before the head's ready
                # cycle (the event walk's jump target).
                self.bound[b] = td
                return _BLOCKED
            dequeued = True
            # The unit's own dequeue consumed the probe at ``td``; the
            # next admission needs a later probe.
            prev_d = td
            sched = head[R_SCHED]
            ibs = sched.ibanks
            rows = sched.rows
            starts = sched.run_starts
            pos = 0
        else:
            # Only the refresh deadline can act, and with no pending
            # work it may not run ahead of kernel time.
            if deadline <= now:
                return _FALLBACK
            self.bound[b] = deadline
            return _BLOCKED
        has_rows = self.has_rows
        if has_rows:
            if not self.paper[b]:
                return _FALLBACK  # per-access policy side effects
            if (
                starts[-1] <= pos
                and self.orow[b * self.nib + ibs[pos]] == rows[pos]
            ):
                # A single remaining same-row run on an already-open row
                # needs no row operation at all: the inherited walk
                # resolves it in one O(1) burst probe, so the chain
                # machinery below would only add constant overhead.
                # Route it to the walk (bit-exact by construction —
                # nothing was mutated, and the gates above kept this
                # check ahead of the full head extraction).
                return _FALLBACK
        if dequeued:
            lw = sched.local_words
            idx = sched.indices
            lengths = sched.run_lengths
            rem = sched.count
            w = head[R_W]
            line = head[R_LINE]
            txn_id = head[R_TXN]
            issued = False
            fib = ibs[0]
            frow = rows[0]
        else:
            lw = vc[C_LW]
            idx = vc[C_IDX]
            lengths = vc[C_RLENS]
            rem = vc[C_REM]
            w = vc[C_W]
            line = vc[C_LINE]
            txn_id = vc[C_TXN]
            issued = vc[C_ISSUED]
            fib = vc[C_FIB]
            frow = vc[C_FROW]
        # ---- pure phase: charge the run chain against virtual timers --
        lim = h if h < deadline else deadline
        t_rcd = self.t_rcd
        t_rp = self.t_rp
        t_wr = self.t_wr
        ta = self.ta
        base_u = b * self.nib
        orow = self.orow
        act = self.act
        col = self.col
        pre = self.pre
        vlast_col = self.last_col[b]
        vlast_dir = self.last_dir[b]
        cursor = td
        busy = 0
        turn = 0
        first_action = -1
        vstate = {}  # u -> [open row, activate, column, precharge]
        act_events = []  # (u, ib, row)
        pre_events = []  # u
        ap_events = []  # u (non-final runs: the paper policy closes)
        run_ibs = []
        run_rows = []  # row per run — the rows this chain opens
        rowop_cycles = []  # cycles consumed by precharges/activates
        col_spans = []  # (first, last) column cycle per run
        chain_mono = True  # every remaining element on one internal bank
        chain_ib = ibs[pos] if has_rows else 0
        if has_rows:
            mono_from = sched.mono_from if dequeued else vc[C_MONO]
            if pos < mono_from:
                chain_mono = False
                # A non-mono chain can neither materialize dequeues nor
                # carry younger in-flight contexts; reject before the
                # pure phase when one of those is already certain.  The
                # chain streams at least one column per element, so the
                # first admission probe ``d1 <= td + rem - 1`` is a
                # guaranteed mid-chain landing.
                if nwin0 > 1:
                    return _FALLBACK
                qs = 1 if dequeued else 0
                if len(rqf) > qs and nwin0 + qs < self.max_ctx:
                    er = rqf[qs][R_READY]
                    d1 = er if er > prev_d + 1 else prev_d + 1
                    if d1 <= td + rem - 1:
                        return _FALLBACK
        # Cycle at which the chain precharges the internal bank's
        # *initially* open row (the first precharge on chain_ib always
        # closes exactly that row); -1 while it stays open.
        first_oclose = -1
        if has_rows:
            ri = bisect_right(starts, pos) - 1
        p = pos
        r = rem
        final_end = -1
        final_u = -1
        final_ib = 0
        while r > 0:
            if has_rows:
                run_len = starts[ri] + lengths[ri] - p
                ib = ibs[p]
                row = rows[p]
                u = base_u + ib
                st = vstate.get(u)
                if st is None:
                    st = [orow[u], act[u], col[u], pre[u]]
                    vstate[u] = st
                if st[0] != row:
                    if st[0] >= 0:
                        # precharge (InternalBank._close)
                        pcyc = cursor if cursor > st[3] else st[3]
                        if pcyc >= lim:
                            return _FALLBACK
                        if first_action < 0:
                            first_action = pcyc
                        busy += 1
                        pre_events.append(u)
                        rowop_cycles.append(pcyc)
                        if first_oclose < 0 and ib == chain_ib:
                            first_oclose = pcyc
                        st[0] = -1
                        rel = pcyc + t_rp
                        if rel > st[1]:
                            st[1] = rel
                        cursor = pcyc + 1
                    # activate
                    acyc = cursor if cursor > st[1] else st[1]
                    if acyc >= lim:
                        return _FALLBACK
                    if first_action < 0:
                        first_action = acyc
                    busy += 1
                    act_events.append((u, ib, row))
                    rowop_cycles.append(acyc)
                    st[0] = row
                    hold = acyc + t_rcd
                    if hold > st[2]:
                        st[2] = hold
                    if hold > st[3]:
                        st[3] = hold
                    cursor = acyc + 1
                col_ready = st[2]
                run_rows.append(row)
            else:
                run_len = r
                ib = 0
                row = 0
                u = -1
                st = None
                col_ready = 0
            # -- column burst: first column obeys the column timer and
            #    the device pin turnaround; the rest stream one/cycle --
            if vlast_dir < 0 or w == vlast_dir:
                pins = vlast_col + 1
            else:
                pins = vlast_col + 1 + ta
            c = cursor
            if col_ready > c:
                c = col_ready
            if pins > c:
                c = pins
            end = c + run_len - 1
            if end >= lim:
                return _FALLBACK
            if first_action < 0:
                first_action = c
            if vlast_dir >= 0 and w != vlast_dir:
                turn += 1
            vlast_col = end
            vlast_dir = w
            busy += run_len
            run_ibs.append(ib)
            col_spans.append((c, end))
            r -= run_len
            if has_rows:
                hold = end + 1 + t_wr if w else end + 1
                if hold > st[3]:
                    st[3] = hold
                if r:
                    # Run ends on a row transition: the paper policy
                    # auto-precharges (no inert context can hold it
                    # open — row sharing is gated out below).
                    st[0] = -1
                    rel = end + 1 + (t_wr if w else 0) + t_rp
                    if rel > st[1]:
                        st[1] = rel
                    ap_events.append(u)
            if r == 0:
                final_end = end
                final_u = u
                final_ib = ib
            cursor = end + 1
            p += run_len
            if has_rows:
                ri += 1
        acct_end = cursor
        # ---- inertness of already in-flight younger contexts ---------
        #    (they hold position > 0 for the whole chain; the gate must
        #    prove they can neither win a row-timer race nor sit on an
        #    open row — same internal bank as the whole chain, row
        #    distinct from the initially open row and every chain row)
        if nwin0 > 1 and has_rows:
            if not chain_mono:
                return _FALLBACK
            oinit = orow[base_u + chain_ib]
            for j in range(1, nwin0):
                ovc = win[j]
                op = ovc[C_POS]
                if ovc[C_IB][op] != chain_ib:
                    return _FALLBACK
                orw = ovc[C_ROW][op]
                if orw == oinit:
                    return _FALLBACK
                for rr in run_rows:
                    if orw == rr:
                        return _FALLBACK
        # ---- materialize mid-chain FIFO dequeues ---------------------
        #    The event walk admits the head at probe max(ready, previous
        #    probe + 1): failing probes jump through the head's ready
        #    cycle and bursts are clipped at it, so that probe exists.
        inflight = nwin0 + (1 if dequeued else 0)
        max_ctx = self.max_ctx
        qstart = 1 if dequeued else 0
        ndq = 0
        dq_cycles = []
        nq = len(rqf)
        qi = qstart
        while qi < nq:
            e = rqf[qi]
            er = e[R_READY]
            d = er if er > prev_d + 1 else prev_d + 1
            if d > final_end:
                break
            if inflight + ndq >= max_ctx:
                # The walk defers this dequeue past the chain's final
                # commit probe; the next resolution admits it exactly.
                break
            if has_rows:
                if not chain_mono:
                    return _FALLBACK
                es = e[R_SCHED]
                # The whole entry must sit on the chain's internal bank.
                if es.ibanks[0] != chain_ib or es.mono_from > 0:
                    return _FALLBACK
                erow = es.rows[0]
                if erow == orow[base_u + chain_ib] and not (
                    0 <= first_oclose < d
                ):
                    # The entry's first row equals the chain's initially
                    # open row.  While that row is still open at the
                    # admission probe the entry could slip columns into
                    # it (the walk's generic column path serves any
                    # context on an open row) — fall back.  But if the
                    # chain precharged it strictly before ``d``, the row
                    # is closed for the rest of the chain (it is gated
                    # out of ``run_rows`` below, so it never reopens)
                    # and the entry is as inert as any other row.
                    return _FALLBACK
                for rr in run_rows:
                    if erow == rr:
                        return _FALLBACK
            dq_cycles.append(d)
            prev_d = d
            ndq += 1
            qi += 1
        # A dequeue probe that coincides with no chain action consumes
        # its own busy cycle (the walk's progressed-without-cost probe).
        for d in dq_cycles:
            hit = False
            for cs, ce in col_spans:
                if cs <= d <= ce:
                    hit = True
                    break
            if not hit:
                for rc in rowop_cycles:
                    if rc == d:
                        hit = True
                        break
            if not hit:
                busy += 1
        # Once a younger mismatched context is in flight, the final
        # column's auto-precharge is forced through bank_close_predict
        # instead of the per-bank predictor.
        forced_close = has_rows and (nwin0 > 1 or ndq > 0)
        # ---- commit phase (nothing above mutated shared state) -------
        if dequeued and first_action > td:
            busy += 1  # the dequeue consumes its own otherwise-idle cycle
        if not issued:
            # AccessScheduler._note_first_operation at the chain's first
            # operation (activate or column — both on the first run).
            row_continues = self.lrs[b][fib] == frow
            if self.paper[b]:
                self.predict[b][ibs[pos]] = not row_continues
            else:
                self.policies[b].note_first_operation(
                    ibs[pos], row_continues
                )
        total = rem
        storage = self.storage[b]
        if w:
            for k in range(pos, pos + total):
                storage[lw[k]] = line[idx[k]]
            self.writes[b] += total
            data_cycle = final_end + t_wr
            slot = self.wsu[b]._slots.get(txn_id)
            if slot is None:
                raise ProtocolError(
                    f"write commit for unknown transaction {txn_id}"
                )
            slot.committed += total
            if data_cycle > slot.commit_cycle:
                slot.commit_cycle = data_cycle
        else:
            self.reads[b] += total
            slot = self.rsu[b]._slots.get(txn_id)
            if slot is None:
                raise ProtocolError(
                    f"data for unknown read transaction {txn_id}"
                )
            received = slot.received
            get = storage.get
            for k in range(pos, pos + total):
                received.append((idx[k], get(lw[k], 0)))
            data_cycle = final_end + self.read_lat
            if data_cycle > slot.last_data_cycle:
                slot.last_data_cycle = data_cycle
        txn = self.outstanding.get(txn_id)
        if txn is None:
            raise ProtocolError(
                f"bank {b} issued for unknown transaction {txn_id}"
            )
        txn.done += total
        if data_cycle > txn.last_data_cycle:
            txn.last_data_cycle = data_cycle
        self.sched_col[b] += total
        if turn:
            self.turnarounds[b] += turn
        self.last_col[b] = vlast_col
        self.last_dir[b] = w
        if has_rows:
            for u in pre_events:
                self.ib_pre[u] += 1
            if pre_events:
                self.sched_pre[b] += len(pre_events)
            lrs = self.lrs[b]
            for u, ib, row in act_events:
                self.ib_act[u] += 1
                lrs[ib] = row
            if act_events:
                self.sched_act[b] += len(act_events)
            for u in ap_events:
                self.ib_ap[u] += 1
            for u, st in vstate.items():
                orow[u] = st[0]
                act[u] = st[1]
                col[u] = st[2]
                pre[u] = st[3]
            asc = self.asc[b]
            for ib in run_ibs:
                asc[ib] = False
            # Final-run auto-precharge: the burst path's predictor term
            # (post-training), or the forced close when a younger
            # mismatched context is in flight at the final column.
            if forced_close or self.predict[b][final_ib]:
                orow[final_u] = -1
                rel = final_end + 1 + (t_wr if w else 0) + t_rp
                if rel > act[final_u]:
                    act[final_u] = rel
                self.ib_ap[final_u] += 1
        # -- ledger: one bulk deposit for the whole chain --------------
        span = acct_end - self.acct[b]
        self._kernel.bulk_account(
            self.ledger_names[b], busy=busy, stalled=span - busy
        )
        self.acct[b] = acct_end
        # -- queue state and the next candidate ------------------------
        if dequeued:
            rqf.popleft()
        else:
            del win[0]
        for _ in range(ndq):
            e = rqf.popleft()
            es = e[R_SCHED]
            win.append(
                # VectorContext.__init__, cursor mode (the SoA dequeue).
                [
                    es.local_words,
                    es.indices,
                    es.ibanks,
                    es.rows,
                    es.next_same_row,
                    0,
                    es.count,
                    e[R_TXN],
                    e[R_W],
                    e[R_LINE],
                    False,
                    es.ibanks[0],
                    es.rows[0],
                    es.run_starts,
                    es.run_lengths,
                    es.mono_from,
                ]
            )
        if win:
            self.pending[b] = True
            # The next unit's first action cannot precede acct_end: its
            # row timers hold past the final column (same internal bank
            # by the gate), and the pin turnaround holds rowless chains.
            self.bound[b] = acct_end
        elif rqf:
            self.pending[b] = True
            nready = rqf[0][R_READY]
            nxt = nready if nready > acct_end else acct_end
            if deadline < nxt:
                nxt = deadline  # refresh runs ahead while work pends
            self.bound[b] = nxt
        else:
            self.pending[b] = False
            self.bound[b] = deadline
        return _RESOLVED

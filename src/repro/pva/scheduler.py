"""The Access Scheduler (SCHED) with its Scheduling Policy Units.

Responsibilities (section 5.2.2): expand each vector request's address
series, order the stream of read/write/activate/precharge operations,
make row open/close decisions, and drive the SDRAM — at most one operation
per cycle over the shared AC datapath, with the oldest pending operations
given priority (the daisy-chained arbitration).

The scheduling heuristics implemented here are the paper's:

* **Promotion** — row activates and precharges are promoted above reads
  and writes as long as they do not conflict with an open row that some
  other vector context still wants (the ``bank_hit_predict`` wired-OR).
  The oldest context may precharge even over younger objections, which
  both matches the daisy-chain priority and guarantees forward progress.
* **Polarity rule** (section 5.2.4) — a context may issue a read/write
  out of order only if no older pending context has the opposite data
  direction; the oldest pending context may reverse the bus polarity
  (paying the turnaround the device model enforces).
* **Row management** (the ``ManageRow`` algorithm) — on each column
  access, decide between auto-precharge and leaving the row open using
  the more-hit / close predict lines and a one-bit-per-internal-bank
  autoprecharge predictor that is trained on row continuity between
  consecutive vector requests.

Every predict line needs the (internal bank, row) coordinates of each
context's current address.  Contexts running on a precomputed hit
schedule (:mod:`repro.pva.schedule`) expose them as plain ints
(``vc.cur_ib``/``vc.cur_row``); incremental contexts fall back to
``device.locate``.  Both paths see identical values, so every decision
below is independent of the expansion mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.params import SystemParams
from repro.pva.request import BCRequest
from repro.pva.rowpolicy import make_row_policy
from repro.pva.vector_context import VectorContext
from repro.sim.events import HORIZON

__all__ = ["IssuedColumn", "AccessScheduler"]


@dataclass(slots=True)
class IssuedColumn:
    """A column (data-moving) operation issued this cycle, reported back to
    the bank controller so it can route data to the staging units.

    One is built per simulated column access — the hottest allocation in
    the simulator — so it trades ``frozen`` enforcement for the cheap
    plain-``__init__`` of a slots dataclass."""

    txn_id: int
    is_write: bool
    index: int
    data_cycle: int
    value: Optional[int]
    auto_precharge: bool
    completed_request: bool


class AccessScheduler:
    """One bank controller's SCHED module: a window of vector contexts
    plus the policy logic that drives the memory device."""

    __slots__ = (
        "params",
        "device",
        "bank",
        "window",
        "policy",
        "_last_row_seen",
        "_activated_since_column",
        "activates",
        "precharges",
        "columns",
        "idle_cycles",
        "acted",
        "_max_contexts",
        "_has_rows",
    )

    def __init__(self, params: SystemParams, device, bank: int):
        self.params = params
        self.device = device
        self.bank = bank
        self.window: List[VectorContext] = []  # oldest first
        num_ib = params.sdram.internal_banks if device.has_rows else 1
        self.policy = make_row_policy(params.row_policy, num_ib)
        self._last_row_seen: List[Optional[int]] = [None] * num_ib
        self._activated_since_column = [False] * num_ib
        self._max_contexts = params.num_vector_contexts
        self._has_rows = device.has_rows
        #: Did the last tick() issue any device operation (row or column)?
        #: The bank controller folds this into its own acted flag so the
        #: simulation kernel's dispatch gate sees row operations too.
        self.acted = False
        # Statistics
        self.activates = 0
        self.precharges = 0
        self.columns = 0
        self.idle_cycles = 0

    # ----------------------------------------------------------------- #
    # Window management
    # ----------------------------------------------------------------- #

    @property
    def has_free_context(self) -> bool:
        return len(self.window) < self._max_contexts

    @property
    def is_idle(self) -> bool:
        return not self.window

    def inject(self, req: BCRequest, cycle: int) -> None:
        """Place a dequeued request into the youngest vector context."""
        self.window.append(VectorContext(req, cycle))

    # ----------------------------------------------------------------- #
    # Predict lines
    # ----------------------------------------------------------------- #

    def _vc_hits_open_row(self, internal_bank: int, exclude: VectorContext) -> bool:
        """``bank_hit_predict``: does any other context's current address
        hit the row currently open in ``internal_bank``?"""
        open_row = self.device.open_row(internal_bank)
        if open_row is None:
            return False
        for vc in self.window:
            if vc is exclude or vc.remaining == 0:
                continue
            ib = vc.cur_ib
            if ib is None:
                loc = self.device.locate(vc.local_addr)
                ib = loc.internal_bank
                row = loc.row
            else:
                row = vc.cur_row
            if ib == internal_bank and row == open_row:
                return True
        return False

    def _more_hits_predicted(
        self, internal_bank: int, row: int, exclude: VectorContext
    ) -> bool:
        """``bank_morehit_predict``: will some context access (ib, row)
        after the operation now issuing?  Considers every other context's
        current address and the issuing context's own next address."""
        if exclude.cur_ib is not None:
            # (internal_bank, row) is always the excluded context's own
            # current coordinates here, so its next-address term is the
            # precomputed row-transition marker.
            if exclude.remaining > 1 and exclude.next_hits_same_row:
                return True
        else:
            next_addr = exclude.next_local_addr
            if next_addr is not None:
                loc = self.device.locate(next_addr)
                if loc.internal_bank == internal_bank and loc.row == row:
                    return True
        for vc in self.window:
            if vc is exclude or vc.remaining == 0:
                continue
            ib = vc.cur_ib
            if ib is None:
                loc = self.device.locate(vc.local_addr)
                ib = loc.internal_bank
                vc_row = loc.row
            else:
                vc_row = vc.cur_row
            if ib == internal_bank and vc_row == row:
                return True
        return False

    def _close_predicted(self, internal_bank: int, row: int) -> bool:
        """``bank_close_predict``: does some context need a *different*
        row in this internal bank?"""
        for vc in self.window:
            if vc.remaining == 0:
                continue
            ib = vc.cur_ib
            if ib is None:
                loc = self.device.locate(vc.local_addr)
                ib = loc.internal_bank
                vc_row = loc.row
            else:
                vc_row = vc.cur_row
            if ib == internal_bank and vc_row != row:
                return True
        return False

    # ----------------------------------------------------------------- #
    # Per-cycle scheduling
    # ----------------------------------------------------------------- #

    def tick(self, cycle: int) -> Optional[IssuedColumn]:
        """Issue at most one SDRAM operation; return column details (for
        data routing) or ``None`` for activates/precharges/idle cycles."""
        if not self.window:
            self.acted = False
            return None
        if self._has_rows and self._try_row_operation(cycle):
            self.acted = True
            return None
        issued = self._try_column(cycle)
        if issued is None:
            self.acted = False
            self.idle_cycles += 1
        else:
            self.acted = True
        return issued

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest cycle at or after ``cycle`` at which this scheduler
        could issue an operation, assuming no external state change.

        Mirrors :meth:`tick` decision by decision, but instead of asking
        "may this operation issue *now*?" it asks each restimer/pin
        scoreboard "when does time alone make it legal?":

        * a context wanting an **activate** (its bank closed) becomes
          issuable at the activate restimer's release;
        * a context allowed to **precharge** (conflicting row open, and
          either unopposed or oldest) at the precharge release;
        * a **column** whose row is already open at the later of the
          column restimer and the shared data pins (with turnaround when
          the direction reverses), walked in the polarity-rule order —
          a pending reversal in an older context fences younger ones
          exactly as in :meth:`_try_column`;
        * everything else (a blocked precharge, a column whose row is
          closed) only unblocks through *another* event, so contributes
          :data:`~repro.sim.events.HORIZON`.

        The result is a conservative lower bound: the scheduler provably
        idles on every cycle strictly before it.
        """
        if not self.window:
            return HORIZON
        device = self.device
        bound = HORIZON
        if device.has_rows:
            banks = device.banks
            for position, vc in enumerate(self.window):
                if vc.remaining == 0:
                    continue
                ib = vc.cur_ib
                if ib is None:
                    loc = device.locate(vc.local_addr)
                    ib = loc.internal_bank
                    row = loc.row
                else:
                    row = vc.cur_row
                open_row = banks[ib].open_row
                if open_row == row:
                    continue
                if open_row is not None:
                    if position != 0 and self._vc_hits_open_row(
                        ib, exclude=vc
                    ):
                        continue
                    ready = banks[ib].precharge_ready_at
                else:
                    ready = banks[ib].activate_ready_at
                if ready < bound:
                    bound = ready
            last_was_write = device.last_was_write
            position = 0
            for vc in self.window:
                if vc.remaining == 0:
                    continue
                matches = last_was_write is None or vc.is_write == last_was_write
                if not matches and position != 0:
                    break
                ib = vc.cur_ib
                if ib is None:
                    ready = device.column_ready_at(vc.local_addr, vc.is_write)
                else:
                    ready = device.column_ready_at_coords(
                        ib, vc.cur_row, vc.is_write
                    )
                if ready < bound:
                    bound = ready
                if not matches:
                    break
                position += 1
        else:
            last_was_write = device.last_was_write
            position = 0
            for vc in self.window:
                if vc.remaining == 0:
                    continue
                matches = last_was_write is None or vc.is_write == last_was_write
                if not matches and position != 0:
                    break
                ready = device.column_ready_at(vc.local_addr, vc.is_write)
                if ready < bound:
                    bound = ready
                if not matches:
                    break
                position += 1
        return bound if bound > cycle else cycle

    def _try_row_operation(self, cycle: int) -> bool:
        """Promoted activates/precharges, oldest context first."""
        device = self.device
        banks = device.banks
        for position, vc in enumerate(self.window):
            if vc.remaining == 0:
                continue
            ib = vc.cur_ib
            if ib is None:
                loc = device.locate(vc.local_addr)
                ib = loc.internal_bank
                row = loc.row
            else:
                row = vc.cur_row
            bank = banks[ib]
            open_row = bank.open_row
            if open_row == row:
                continue
            if open_row is not None:
                blocked = self._vc_hits_open_row(ib, exclude=vc)
                # The oldest context may close the row over younger
                # objections (daisy-chain priority / forward progress).
                if blocked and position != 0:
                    continue
                if bank.can_precharge(cycle):
                    device.precharge(ib, cycle)
                    self.precharges += 1
                    return True
            else:
                if bank.can_activate(cycle):
                    if not vc.issued_any:
                        self._note_first_operation(vc, ib)
                    if vc.cur_ib is None:
                        device.activate(vc.local_addr, cycle)
                    else:
                        device.activate_at(ib, row, cycle)
                    self._last_row_seen[ib] = row
                    self._activated_since_column[ib] = True
                    self.activates += 1
                    return True
        return False

    def _try_column(self, cycle: int) -> Optional[IssuedColumn]:
        """Column issue under the polarity (data-hazard) rule."""
        device = self.device
        last_was_write = device.last_was_write
        position = 0
        for vc in self.window:
            if vc.remaining == 0:
                continue
            matches = last_was_write is None or vc.is_write == last_was_write
            if not matches and position != 0:
                # A polarity reversal is pending in an older context;
                # younger contexts may not overtake it.
                break
            ib = vc.cur_ib
            if ib is None:
                can = device.can_column(vc.local_addr, cycle, vc.is_write)
            else:
                can = device.can_column_at(ib, vc.cur_row, cycle, vc.is_write)
            if can:
                return self._issue_column(vc, cycle)
            if not matches:
                # The oldest context needs a reversal but cannot issue
                # yet (turnaround/row not ready); nothing younger may go.
                break
            position += 1
        return None

    def _issue_column(self, vc: VectorContext, cycle: int) -> IssuedColumn:
        ib = vc.cur_ib
        if ib is None:
            loc = self.device.locate(vc.local_addr)
            ib = loc.internal_bank
            row = loc.row
        else:
            row = vc.cur_row
        if not vc.issued_any:
            self._note_first_operation(vc, ib)
        auto_precharge = (
            self._decide_auto_precharge(vc, ib, row)
            if self._has_rows
            else False
        )
        is_write = vc.is_write
        value = vc.write_value() if is_write else None
        data_cycle, read_value = self.device.column_at(
            vc.local_addr,
            ib,
            row,
            cycle,
            is_write,
            auto_precharge=auto_precharge,
            value=value,
        )
        index = vc.index
        txn_id = vc.req.txn_id
        vc.advance()
        completed = vc.remaining == 0
        if completed:
            self.window.remove(vc)
        self.columns += 1
        return IssuedColumn(
            txn_id,
            is_write,
            index,
            data_cycle if not is_write else cycle + self.params.sdram.t_wr,
            read_value,
            auto_precharge,
            completed,
        )

    # ----------------------------------------------------------------- #
    # Row management (the ManageRow algorithm)
    # ----------------------------------------------------------------- #

    def _note_first_operation(self, vc: VectorContext, internal_bank: int) -> None:
        """Train the autoprecharge predictor on the very first operation
        of a new vector request: remember whether the request's first row
        continues the row last used in its internal bank."""
        if vc.issued_any:
            return
        sched = vc.req.schedule
        if sched is not None:
            first_ib = sched.ibanks[0]
            first_row = sched.rows[0]
        else:
            first_loc = self.device.locate(vc.req.local_first)
            first_ib = first_loc.internal_bank
            first_row = first_loc.row
        row_continues = self._last_row_seen[first_ib] == first_row
        self.policy.note_first_operation(internal_bank, row_continues)
        vc.issued_any = True

    def _decide_auto_precharge(
        self, vc: VectorContext, internal_bank: int, row: int
    ) -> bool:
        """Close the row with this access, or leave it open?"""
        row_hit = not self._activated_since_column[internal_bank]
        self._activated_since_column[internal_bank] = False
        self.policy.observe_access(internal_bank, row_hit)
        more_hits = self._more_hits_predicted(internal_bank, row, exclude=vc)
        last_of_request = vc.remaining == 1
        if not last_of_request and not more_hits and vc.cur_ib is None:
            # Incremental path only: decode the issuing context's next
            # address for the self-term.  (Schedule-cursor contexts had
            # their precomputed row-transition marker folded in by
            # _more_hits_predicted already.)
            next_addr = vc.next_local_addr
            if next_addr is not None:
                loc = self.device.locate(next_addr)
                if loc.internal_bank == internal_bank and loc.row == row:
                    more_hits = True
        return self.policy.decide(
            internal_bank=internal_bank,
            last_of_request=last_of_request,
            more_hits=more_hits,
            close_predicted=self._close_predicted(internal_bank, row),
        )

"""The PVA memory-controller back end (chapter 5).

Cycle-level models of the bank controller's subcomponents — FirstHit
Predict, Request FIFO / Register File, FirstHit Calculate, the access
scheduler with its vector contexts and scheduling policy, staging units —
and the full :class:`~repro.pva.system.PVAMemorySystem` that drives 16 of
them over a split-transaction vector bus.
"""

from repro.pva.system import PVAMemorySystem

__all__ = ["PVAMemorySystem"]

"""Staging units (section 5.2.2 item 8, section 5.2.6).

The Read Staging Unit buffers data returned by the SDRAM for each
transaction until the whole cache line can be merged on the BC bus; the
Write Staging Unit buffers the line broadcast by the memory controller
until the scattered writes commit.  Each unit drives the (active-low)
``transaction_complete`` wired-OR line for its transactions: a bank
controller releases the line when it has collected (reads) or committed
(writes) every element it is responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, ProtocolError

__all__ = ["ReadStagingUnit", "WriteStagingUnit"]


@dataclass(slots=True)
class _ReadSlot:
    expected: int
    received: List[Tuple[int, int]] = field(default_factory=list)
    last_data_cycle: int = -1


class ReadStagingUnit:
    """Per-bank-controller buffer for gathered read data."""

    __slots__ = ("capacity", "_slots")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._slots: Dict[int, _ReadSlot] = {}

    def open(self, txn_id: int, expected: int) -> None:
        """Reserve a transaction buffer when the VEC_READ broadcast is
        seen.  ``expected`` is this bank's element count (possibly 0)."""
        if txn_id in self._slots:
            raise ProtocolError(
                f"read transaction {txn_id} already staged in this bank"
            )
        if len(self._slots) >= self.capacity:
            raise CapacityError(
                f"read staging unit full ({self.capacity} transactions)"
            )
        self._slots[txn_id] = _ReadSlot(expected=expected)

    def collect(
        self, txn_id: int, index: int, value: int, data_cycle: int
    ) -> None:
        """Record one element returned by the SDRAM."""
        slot = self._slots.get(txn_id)
        if slot is None:
            raise ProtocolError(f"data for unknown read transaction {txn_id}")
        if len(slot.received) >= slot.expected:
            raise ProtocolError(
                f"transaction {txn_id} received more elements than expected"
            )
        slot.received.append((index, value))
        if data_cycle > slot.last_data_cycle:
            slot.last_data_cycle = data_cycle

    def complete(self, txn_id: int, cycle: int) -> bool:
        """Transaction-complete line state for this bank: has every
        expected element arrived by ``cycle``?"""
        slot = self._slots.get(txn_id)
        if slot is None:
            raise ProtocolError(f"unknown read transaction {txn_id}")
        return (
            len(slot.received) == slot.expected
            and cycle >= slot.last_data_cycle
        )

    def drain(self, txn_id: int) -> List[Tuple[int, int]]:
        """STAGE_READ: hand the collected ``(index, value)`` pairs to the
        bus merge and release the buffer."""
        slot = self._slots.pop(txn_id, None)
        if slot is None:
            raise ProtocolError(f"STAGE_READ for unknown transaction {txn_id}")
        if len(slot.received) != slot.expected:
            raise ProtocolError(
                f"STAGE_READ for incomplete transaction {txn_id} "
                f"({len(slot.received)}/{slot.expected} elements)"
            )
        return slot.received

    def __len__(self) -> int:
        return len(self._slots)


@dataclass(slots=True)
class _WriteSlot:
    expected: int
    committed: int = 0
    commit_cycle: int = -1


class WriteStagingUnit:
    """Per-bank-controller buffer tracking scattered-write commitment."""

    __slots__ = ("capacity", "_slots")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._slots: Dict[int, _WriteSlot] = {}

    def open(self, txn_id: int, expected: int) -> None:
        """Reserve a buffer when the VEC_WRITE broadcast is seen (the data
        line arrived just before, via STAGE_WRITE)."""
        if txn_id in self._slots:
            raise ProtocolError(
                f"write transaction {txn_id} already staged in this bank"
            )
        if len(self._slots) >= self.capacity:
            raise CapacityError(
                f"write staging unit full ({self.capacity} transactions)"
            )
        self._slots[txn_id] = _WriteSlot(expected=expected)

    def commit(self, txn_id: int, commit_cycle: int) -> None:
        """Record one element written to the SDRAM; ``commit_cycle``
        includes write recovery."""
        slot = self._slots.get(txn_id)
        if slot is None:
            raise ProtocolError(
                f"write commit for unknown transaction {txn_id}"
            )
        if slot.committed >= slot.expected:
            raise ProtocolError(
                f"transaction {txn_id} committed more elements than expected"
            )
        slot.committed += 1
        if commit_cycle > slot.commit_cycle:
            slot.commit_cycle = commit_cycle

    def complete(self, txn_id: int, cycle: int) -> bool:
        """Has this bank committed all of its elements by ``cycle``?"""
        slot = self._slots.get(txn_id)
        if slot is None:
            raise ProtocolError(f"unknown write transaction {txn_id}")
        return slot.committed == slot.expected and cycle >= slot.commit_cycle

    def release(self, txn_id: int) -> None:
        """Free the buffer once the front end observed completion."""
        if txn_id not in self._slots:
            raise ProtocolError(f"release of unknown transaction {txn_id}")
        del self._slots[txn_id]

    def __len__(self) -> int:
        return len(self._slots)

"""The structure-of-arrays bank automaton (``sim_mode="soa"``).

The precompute backend (PR 5) already resolves *what* every bank does at
broadcast time — the full per-bank hit schedule of
:mod:`repro.pva.schedule`.  What remained per-cycle was the *object
graph*: sixteen ``BankController``/``InternalBank``/``Restimer`` trees,
each ticked through the kernel's component dispatch.  This module
collapses all of them into one table-driven automaton:

* restimer deadlines (activate/column/precharge ready-at), open rows,
  refresh deadlines, FHC occupancy and next-event cycles live in flat
  ``array('q')`` parallel arrays indexed by ``bank`` (or
  ``bank * internal_banks + ib``);
* vector contexts are small mutable lists (schedule-cursor state only —
  ``sim_mode="soa"`` forces ``precompute=True``, so every request
  carries a :class:`~repro.pva.schedule.BankSchedule` and the
  incremental ``device.locate`` fallbacks are never needed);
* one kernel component (:class:`SoaBankAutomaton`) speaks for all
  sixteen ``bank-*`` attribution-ledger entries via the kernel's
  self-accounting protocol, and advances the kernel's skip bound with a
  single min-reduction over the deadline array (numpy-accelerated behind
  a feature probe when the bank count makes it worthwhile).

**Run-ahead batching.**  Banks interact with the rest of the system only
through broadcasts (input, applied at the front end's call cycle),
column issues reported into the front end's transaction table (output),
and the staging units (drained by the front end strictly after a
transaction fully issues).  Each :meth:`SoaBankAutomaton.tick` therefore
processes a whole *batch* of bank events ahead of kernel time, up to

``h = max(cycle + 1, bus.busy_until, front.next_issue_allowed)``

(or unbounded once the command trace is drained) — a proven lower bound
on the next broadcast call cycle, because the front end ticks first in
registration order and both terms are monotone and only front-mutated.
Within ``[bound, h)`` nothing external can change a bank's inputs, so
replaying its event chain early is exact.

**Cycle-exactness argument** (the invariants the differential suite
pins down):

1. *Action cycles.*  Each candidate cycle is probed with a
   decision-for-decision mirror of ``BankController.tick`` /
   ``AccessScheduler.tick``; the next candidate after an action or a
   failed probe at ``t`` is ``max(bank_bound(t), t + 1)`` where
   ``bank_bound`` mirrors the object model's ``next_event_cycle`` lower
   bounds.  A conservative bound degrades to a denser probe walk, never
   to a different action cycle.
2. *Refresh.*  The object model fires auto-refresh at exactly the
   deadline in every mode (the refresh term is unconditional in the bank
   bound, so the kernel always visits it); the automaton fires it when a
   candidate reaches the deadline — the same cycle — and, with no
   pending work, only once kernel time itself reaches the deadline
   (matching the run exiting before tail refreshes ever fire).
3. *Completion.*  Column issues are recorded into the front end's
   transaction table at batch time (early), but retirement additionally
   requires ``cycle >= last_data_cycle`` — and every issue cycle is
   ``<=`` its data cycle — so transactions retire at the identical
   kernel cycle and the staging units are drained only after their data
   genuinely arrived.
4. *Broadcast state.*  At a broadcast call cycle every batch has run
   strictly past its events (``h`` of the previous batches is a lower
   bound on the call cycle), so the FIFO/window/idle state the broadcast
   observes equals the object model's.
5. *Ledger.*  Per-bank busy/stalled/idle counters are settled span-wise:
   action cycles are busy, quiet spans are stalled iff the FIFO or
   window was non-empty after the preceding action (``pending``),
   exactly ``_BankComponent.account``'s classification, which is
   visited-cycle invariant.  The kernel merges the buckets at
   ``finalize`` through the self-accounting protocol.

The only object-model statistic intentionally *not* reproduced is
``AccessScheduler.idle_cycles`` — it counts visited-but-unproductive
ticks, is run-loop dependent even between the tick and skip modes, and
is not part of :class:`~repro.sim.stats.RunResult`.

On any exit from :meth:`PVAMemorySystem.run` the automaton writes the
array state back into the object graph (:meth:`writeback`), so device
statistics, storage peeks and back-to-back runs behave identically to
the other backends.  In-flight FIFO entries and vector contexts are not
reconstructed as objects — they are empty on every successful run, and
after a mid-run exception (watchdog timeout, injected fault) the object
graph is defined only well enough to be inspected/reset, same as the
other backends guarantee.
"""

from __future__ import annotations

from array import array
from collections import deque
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, ProtocolError
from repro.pva.schedule import BankSchedule, pairs_schedule, stride_schedule
from repro.pva.rowpolicy import PaperPolicy
from repro.sdram.device import SDRAMDevice
from repro.sim.events import HORIZON
from repro.sim.stats import ComponentCycles
from repro.sram.device import SRAMDevice

try:  # feature probe: numpy accelerates the skip-bound min-reduction
    import numpy as _np
except Exception:  # pragma: no cover - numpy is optional
    _np = None

__all__ = [
    "SoaBankAutomaton",
    "broadcast_schedules",
    "clear_soa_cache",
    "numpy_bound_enabled",
    "soa_cache_info",
    "soa_eligible",
]

#: Banks needed before the numpy min-reduction beats a plain ``min()``
#: over the deadline array (interpreter call overhead dominates below).
_NUMPY_MIN_BANKS = 64


@lru_cache(maxsize=None)
def numpy_bound_enabled(num_banks: int) -> bool:
    """Module-level cached decision: accelerate the per-bank deadline
    min-reduction with numpy for this bank count?

    Folds the feature probe (is numpy importable?), the bank-count
    threshold (:data:`_NUMPY_MIN_BANKS`) and the ``array('q')`` width
    check into one memoized answer shared by every array-backed backend
    (the SoA automaton and the closed-form window backend), instead of
    re-deriving it per automaton construction.
    """
    return (
        _np is not None
        and num_banks >= _NUMPY_MIN_BANKS
        and array("q").itemsize == 8
    )

#: Memo bound for the all-banks schedule tuples (one entry per distinct
#: broadcast vector; the per-bank tables underneath share the
#: stride_schedule LRU with the object backend).
_BROADCAST_CACHE_SIZE = 1024

# Vector-context slot layout: a context is a flat mutable list, the
# SoA replacement for repro.pva.vector_context.VectorContext.  Slots
# 0-4 are the (immutable, shared) schedule tuples; 5+ are the cursor.
C_LW = 0  # local_words tuple
C_IDX = 1  # indices tuple
C_IB = 2  # ibanks tuple
C_ROW = 3  # rows tuple
C_NSR = 4  # next_same_row tuple
C_POS = 5  # cursor position
C_REM = 6  # elements remaining
C_TXN = 7  # transaction id
C_W = 8  # 1 = write, 0 = read
C_LINE = 9  # staged write line (tuple) or None
C_ISSUED = 10  # has the first operation been issued?
C_FIB = 11  # first element's internal bank (predictor training)
C_FROW = 12  # first element's row (predictor training)
C_RSTARTS = 13  # schedule run_starts tuple (same-row run segmentation)
C_RLENS = 14  # schedule run_lengths tuple
C_MONO = 15  # schedule mono_from (single-internal-bank suffix marker)

# Request-FIFO entry layout (replaces repro.pva.request.BCRequest).
R_READY = 0  # ready cycle (FHP/FHC pipeline + bypass timing)
R_TXN = 1
R_W = 2
R_LINE = 3
R_SCHED = 4  # BankSchedule


@lru_cache(maxsize=_BROADCAST_CACHE_SIZE)
def broadcast_schedules(
    base: int,
    stride: int,
    length: int,
    num_banks: int,
    geometry: Tuple,
) -> Tuple[Optional[BankSchedule], ...]:
    """All banks' hit tables for one vector command, as a tuple indexed
    by bank number (``None`` where the bank owns no element).

    One memo probe per broadcast instead of ``num_banks``; the tables
    themselves come from (and are shared with) the
    :func:`~repro.pva.schedule.stride_schedule` LRU, so the two backends
    can never disagree about a schedule's contents.
    """
    return tuple(
        stride_schedule(base, stride, length, bank, num_banks, geometry)
        for bank in range(num_banks)
    )


def soa_cache_info():
    """The broadcast-schedule memo's ``lru_cache`` statistics."""
    return broadcast_schedules.cache_info()


def clear_soa_cache() -> None:
    """Drop the broadcast-schedule memo (see
    :func:`repro.api.clear_caches`)."""
    broadcast_schedules.cache_clear()


def soa_eligible(banks) -> bool:
    """May this run be stepped by the array automaton?

    Conservative: the automaton mirrors exactly the
    :class:`~repro.sdram.device.SDRAMDevice` /
    :class:`~repro.sram.device.SRAMDevice` models (homogeneously), with
    no command log attached, precomputed schedules available, and every
    bank idle (a fresh system, or one whose previous run completed).
    Anything else silently falls back to the object backend — same
    results, object speed.
    """
    if not banks:
        return False
    device_type = type(banks[0].device)
    if device_type is not SDRAMDevice and device_type is not SRAMDevice:
        return False
    geometry = banks[0]._geom
    if geometry is None:
        return False
    for index, bank in enumerate(banks):
        device = bank.device
        if type(device) is not device_type:
            return False
        if device.log is not None:
            return False
        if bank._geom != geometry:
            return False
        if bank.bank != index:
            return False
        if bank.rqf or bank.scheduler.window:
            return False
    return True


class SoaBankAutomaton:
    """All bank controllers of one run, stepped as flat-array operations.

    Registers with the kernel as a single self-accounting component
    (``ledger_names`` = the sixteen ``bank-*`` entries); construction
    loads the object graph's state into the arrays, :meth:`writeback`
    restores it.
    """

    name = "banks"

    def __init__(self, banks, front, bus, params):
        n = len(banks)
        self.n = n
        self.banks = banks
        self.front = front
        self.bus = bus
        self.outstanding = front.outstanding
        self.ncmds = len(front.commands)
        self.ledger_names = tuple(f"bank-{bank.bank}" for bank in banks)

        device0 = banks[0].device
        self.has_rows = bool(device0.has_rows)
        self.nib = device0.timing.internal_banks if self.has_rows else 1
        if self.has_rows:
            timing = device0.timing
            self.t_rcd = timing.t_rcd
            self.t_rp = timing.t_rp
            self.t_rfc = timing.t_rfc
            self.read_lat = timing.cas_latency
            self.refresh_interval = timing.refresh_interval
        else:
            self.t_rcd = self.t_rp = self.t_rfc = 0
            self.read_lat = device0.timing.access_cycles
            self.refresh_interval = 0
        #: The scheduler stamps write data cycles with the *SDRAM* write
        #: recovery even when the device is SRAM (see
        #: AccessScheduler._issue_column) — mirror that exactly.
        self.t_wr = params.sdram.t_wr
        self.ta = device0.bus_turnaround
        self.fifo_depth = params.request_fifo_depth
        self.max_ctx = params.num_vector_contexts
        self.bypass = params.bypass_paths
        self.fhc_latency = params.fhc_latency
        self.num_banks = params.num_banks
        self.bank_bits = params.bank_bits
        self._pla = banks[0].fhp.pla
        self._geom = banks[0]._geom

        nu = n * self.nib
        # -- per-internal-bank state (index u = bank * nib + ib) -------
        self.orow = array("q", [-1]) * nu  # open row, -1 = closed
        self.act = array("q", bytes(8 * nu))  # activate ready-at
        self.col = array("q", bytes(8 * nu))  # column ready-at
        self.pre = array("q", bytes(8 * nu))  # precharge ready-at
        self.ib_act = array("q", bytes(8 * nu))
        self.ib_pre = array("q", bytes(8 * nu))
        self.ib_ap = array("q", bytes(8 * nu))
        # -- per-bank state --------------------------------------------
        self.bound = array("q", bytes(8 * n))  # next-event candidate
        self.nr = array("q", bytes(8 * n))  # next refresh deadline
        self.last_col = array("q", bytes(8 * n))  # device pin state
        self.last_dir = array("q", bytes(8 * n))  # -1 none, 0 R, 1 W
        self.fhc_busy = array("q", bytes(8 * n))
        self.fhc_calcs = array("q", bytes(8 * n))
        self.reads = array("q", bytes(8 * n))
        self.writes = array("q", bytes(8 * n))
        self.turnarounds = array("q", bytes(8 * n))
        self.refreshes = array("q", bytes(8 * n))
        self.sched_act = array("q", bytes(8 * n))
        self.sched_pre = array("q", bytes(8 * n))
        self.sched_col = array("q", bytes(8 * n))
        # -- attribution ledger ----------------------------------------
        self.busy_c = array("q", bytes(8 * n))
        self.stalled_c = array("q", bytes(8 * n))
        self.idle_c = array("q", bytes(8 * n))
        self.acct = array("q", bytes(8 * n))  # settled-to cycle
        self.pending = [False] * n  # rqf/window non-empty after acct

        # -- shared mutable structures (no writeback needed) -----------
        self._rqf: List[deque] = [deque() for _ in range(n)]
        self._win: List[list] = [[] for _ in range(n)]
        self.storage = [bank.device._storage for bank in banks]
        self.rsu = [bank.read_staging for bank in banks]
        self.wsu = [bank.write_staging for bank in banks]
        self.policies = [bank.scheduler.policy for bank in banks]
        self.paper = [type(p) is PaperPolicy for p in self.policies]
        self.predict = [
            p.autoprecharge_predict if type(p) is PaperPolicy else None
            for p in self.policies
        ]
        self.lrs = [bank.scheduler._last_row_seen for bank in banks]
        self.asc = [bank.scheduler._activated_since_column for bank in banks]

        # -- load the object graph's current state ---------------------
        nib = self.nib
        for b, bank in enumerate(banks):
            device = bank.device
            self.last_col[b] = device._last_column_cycle
            lww = device._last_was_write
            self.last_dir[b] = -1 if lww is None else int(lww)
            self.reads[b] = device.reads
            self.writes[b] = device.writes
            self.turnarounds[b] = device.turnarounds
            self.fhc_busy[b] = bank.fhc._busy_until
            self.fhc_calcs[b] = bank.fhc.calculations
            self.sched_act[b] = bank.scheduler.activates
            self.sched_pre[b] = bank.scheduler.precharges
            self.sched_col[b] = bank.scheduler.columns
            if self.has_rows:
                self.refreshes[b] = device.refreshes
                nxt = device._next_refresh
                self.nr[b] = HORIZON if nxt is None else nxt
                base_u = b * nib
                for ib, internal in enumerate(device.banks):
                    u = base_u + ib
                    row = internal.open_row
                    self.orow[u] = -1 if row is None else row
                    self.act[u] = internal._activate_timer._ready_at
                    self.col[u] = internal._column_timer._ready_at
                    self.pre[u] = internal._precharge_timer._ready_at
                    self.ib_act[u] = internal.activates
                    self.ib_pre[u] = internal.precharges
                    self.ib_ap[u] = internal.auto_precharges
            else:
                self.nr[b] = HORIZON
            # No queued work at load time (soa_eligible guarantees it):
            # the only standing event is the refresh deadline.
            self.bound[b] = self.nr[b]

        self._np_bound = (
            _np.frombuffer(self.bound, dtype=_np.int64)
            if numpy_bound_enabled(n)
            else None
        )

    # ------------------------------------------------------------- #
    # Kernel component protocol
    # ------------------------------------------------------------- #

    def tick(self, cycle: int) -> bool:
        """Run every bank's event batch up to the broadcast horizon.

        Returns True iff any event (even one ahead of kernel time) was
        processed — run-ahead mutates completion-visible state, so the
        kernel's bound cache must be voided.
        """
        front = self.front
        if front.next_cmd < self.ncmds:
            h = front.next_issue_allowed
            busy = self.bus.busy_until
            if busy > h:
                h = busy
            nxt = cycle + 1
            if nxt > h:
                h = nxt
        else:
            h = HORIZON
        acted = False
        bound = self.bound
        run_bank = self._run_bank
        for b in range(self.n):
            if bound[b] < h and run_bank(b, cycle, h):
                acted = True
        return acted

    def next_event_cycle(self, cycle: int) -> int:
        """Single min-reduction over the per-bank deadline array."""
        np_bound = self._np_bound
        if np_bound is not None:
            target = int(np_bound.min())
        else:
            target = min(self.bound)
        return target if target > cycle else cycle

    def account(self, start: int, end: int) -> Tuple[int, int, int]:
        """Constant-cost placeholder: the automaton is self-accounting
        (the kernel discards this split; see SimKernel.register)."""
        return (0, 0, end - start)

    def finalize_ledger(self, total_cycles: int) -> Dict[str, ComponentCycles]:
        """Close every bank's busy/stalled/idle ledger at
        ``total_cycles`` and return the ``bank-*`` entries."""
        out: Dict[str, ComponentCycles] = {}
        for b in range(self.n):
            self._settle(b, total_cycles)
            self.acct[b] = total_cycles
            out[f"bank-{b}"] = ComponentCycles(
                busy=self.busy_c[b],
                stalled=self.stalled_c[b],
                idle=self.idle_c[b],
            )
        return out

    # ------------------------------------------------------------- #
    # Batch stepping
    # ------------------------------------------------------------- #

    def _settle(self, b: int, upto: int) -> None:
        """Attribute the quiet span ``[acct, upto)``: stalled while work
        was pending after the last action, idle otherwise."""
        acct = self.acct[b]
        if upto > acct:
            if self.pending[b]:
                self.stalled_c[b] += upto - acct
            else:
                self.idle_c[b] += upto - acct

    def _run_bank(self, b: int, now: int, h: int) -> bool:
        """Process bank ``b``'s events from its stored candidate up to
        (but excluding) ``h``; leave ``bound[b]`` at the next candidate.
        Returns True iff any event was processed.

        This is the fused hot loop: BankController.tick's dequeue, the
        scheduler's row pass, the column path and the next-event bound
        inlined with every array held in a local.  Two load-bearing
        fusions:

        * The next-event bound is accumulated *during* a failing probe
          (every blocked candidate records the cycle its timer frees)
          instead of by a separate scan, so a failed probe costs one
          walk, not two; after an action the next probe simply lands on
          the action's floor (``t + cost``).
        * The column path issues whole same-row runs as **bursts**
          whenever every in-flight context sits on its open row — then
          no row operation can fire on any burst cycle (row ops need a
          row mismatch and contexts only move when they issue), the
          oldest context matches the pin polarity every cycle, and the
          object model provably issues one of its columns per cycle —
          so the run collapses into one batch of array writes.  The run
          is clipped at the batch horizon, the refresh deadline and the
          next FIFO dequeue cycle; a clipped tail still has same-row
          hits ahead, so its auto-precharge decisions would all be
          False and nothing is lost by re-probing it.
        """
        bound = self.bound
        nr = self.nr
        rqf = self._rqf[b]
        win = self._win[b]
        orow = self.orow
        act = self.act
        col = self.col
        pre = self.pre
        busy_c = self.busy_c
        stalled_c = self.stalled_c
        idle_c = self.idle_c
        acct = self.acct
        pending = self.pending
        last_col_a = self.last_col
        last_dir_a = self.last_dir
        has_rows = self.has_rows
        max_ctx = self.max_ctx
        ta = self.ta
        t_wr = self.t_wr
        t_rp = self.t_rp
        t_rcd = self.t_rcd
        base_u = b * self.nib
        burst_ok = self.paper[b] or not has_rows
        storage = self.storage[b]
        outstanding = self.outstanding
        processed = False
        t = bound[b]
        while True:
            if not rqf and not win:
                # Only the refresh deadline can act, and with no pending
                # work it may not run ahead of kernel time: the object
                # model's run can exit before a tail refresh ever fires.
                deadline = nr[b]
                if deadline <= now:
                    a = acct[b]
                    if deadline > a:
                        if pending[b]:
                            stalled_c[b] += deadline - a
                        else:
                            idle_c[b] += deadline - a
                    busy_c[b] += 1
                    acct[b] = deadline + 1
                    self._do_refresh(b, deadline)
                    processed = True
                    t = nr[b]
                    continue
                bound[b] = deadline
                return processed
            if t >= h:
                bound[b] = t
                return processed
            deadline = nr[b]
            if t >= deadline:
                # Auto-refresh consumes its cycle before any scheduler
                # work, exactly at the deadline (BankController.tick
                # checks maybe_refresh first and the kernel always
                # visits the deadline cycle).
                a = acct[b]
                if deadline > a:
                    if pending[b]:
                        stalled_c[b] += deadline - a
                    else:
                        idle_c[b] += deadline - a
                busy_c[b] += 1
                acct[b] = deadline + 1
                pending[b] = True
                self._do_refresh(b, deadline)
                processed = True
                t = deadline + 1
                continue
            # ---- one probed cycle: BankController.tick sans refresh --
            # ``nb`` accumulates the next-event bound along every
            # *failing* branch (the candidate cycle each blocked timer
            # frees); an action discards it in favour of the floor.
            progressed = False
            nwin = len(win)
            nb = deadline
            if rqf and nwin < max_ctx:
                ready = rqf[0][0]
                if ready <= t:
                    head = rqf.popleft()
                    sched = head[4]
                    win.append(
                        # VectorContext.__init__, cursor mode.
                        [
                            sched.local_words,
                            sched.indices,
                            sched.ibanks,
                            sched.rows,
                            sched.next_same_row,
                            0,
                            sched.count,
                            head[1],
                            head[2],
                            head[3],
                            False,
                            sched.ibanks[0],
                            sched.rows[0],
                            sched.run_starts,
                            sched.run_lengths,
                            sched.mono_from,
                        ]
                    )
                    progressed = True
                    nwin += 1
                elif ready < nb:
                    nb = ready
            cost = 0
            if nwin:
                # -- row pass (AccessScheduler._try_row_operation),
                #    also deciding burst eligibility: every context on
                #    its open row means no row op can preempt a burst.
                all_open = True
                if has_rows:
                    position = 0
                    for vc in win:
                        pos = vc[5]
                        ib = vc[2][pos]
                        row = vc[3][pos]
                        u = base_u + ib
                        open_row = orow[u]
                        if open_row == row:
                            position += 1
                            continue
                        all_open = False
                        if open_row >= 0:
                            if position != 0 and self._hits_open(
                                win, vc, ib, open_row
                            ):
                                position += 1
                                continue
                            x = pre[u]
                            if t >= x:
                                # precharge: InternalBank._close(t)
                                orow[u] = -1
                                release = t + t_rp
                                if release > act[u]:
                                    act[u] = release
                                self.ib_pre[u] += 1
                                self.sched_pre[b] += 1
                                cost = 1
                                break
                            if x < nb:
                                nb = x
                        else:
                            x = act[u]
                            if t >= x:
                                if not vc[10]:
                                    self._note_first(b, vc, ib)
                                orow[u] = row
                                hold = t + t_rcd
                                if hold > col[u]:
                                    col[u] = hold
                                if hold > pre[u]:
                                    pre[u] = hold
                                self.lrs[b][ib] = row
                                self.asc[b][ib] = True
                                self.ib_act[u] += 1
                                self.sched_act[b] += 1
                                cost = 1
                                break
                            if x < nb:
                                nb = x
                        position += 1
                if cost == 0:
                    vc0 = win[0]
                    last_col = last_col_a[b]
                    last_dir = last_dir_a[b]
                    w = vc0[8]
                    if (
                        burst_ok
                        and all_open
                        and t > last_col
                        and (
                            last_dir < 0
                            or w == last_dir
                            or t >= last_col + 1 + ta
                        )
                    ):
                        # -- burst: the oldest context's same-row run --
                        pos = vc0[5]
                        if has_rows:
                            ib = vc0[2][pos]
                            row = vc0[3][pos]
                            u = base_u + ib
                            ok = t >= col[u]
                        else:
                            ib = 0
                            row = 0
                            u = -1
                            ok = True
                        if ok:
                            rem = vc0[6]
                            if has_rows:
                                nsr = vc0[4]
                                run = 1
                                while run < rem and nsr[pos + run - 1]:
                                    run += 1
                            else:
                                run = rem
                            cap = h - t
                            c2 = deadline - t
                            if c2 < cap:
                                cap = c2
                            if rqf and nwin < max_ctx:
                                # The object model dequeues the next
                                # FIFO head at its ready cycle (>= t+1:
                                # at most one dequeue per cycle, and
                                # this cycle's already happened).
                                c3 = rqf[0][0] - t
                                if c3 < 1:
                                    c3 = 1
                                if c3 < cap:
                                    cap = c3
                            clipped = run > cap
                            if clipped:
                                run = cap
                            if not vc0[10]:
                                self._note_first(b, vc0, ib)
                            end = t + run - 1
                            if last_dir >= 0 and w != last_dir:
                                self.turnarounds[b] += 1
                            last_col_a[b] = end
                            last_dir_a[b] = w
                            # -- data movement, batched ----------------
                            local_words = vc0[0]
                            indices = vc0[1]
                            txn_id = vc0[7]
                            if w:
                                line = vc0[9]
                                for k in range(pos, pos + run):
                                    storage[local_words[k]] = line[
                                        indices[k]
                                    ]
                                self.writes[b] += run
                                data_cycle = end + t_wr
                                slot = self.wsu[b]._slots.get(txn_id)
                                if slot is None:
                                    raise ProtocolError(
                                        f"write commit for unknown "
                                        f"transaction {txn_id}"
                                    )
                                slot.committed += run
                                if data_cycle > slot.commit_cycle:
                                    slot.commit_cycle = data_cycle
                            else:
                                self.reads[b] += run
                                slot = self.rsu[b]._slots.get(txn_id)
                                if slot is None:
                                    raise ProtocolError(
                                        f"data for unknown read "
                                        f"transaction {txn_id}"
                                    )
                                received = slot.received
                                get = storage.get
                                for k in range(pos, pos + run):
                                    received.append(
                                        (
                                            indices[k],
                                            get(local_words[k], 0),
                                        )
                                    )
                                data_cycle = end + self.read_lat
                                if data_cycle > slot.last_data_cycle:
                                    slot.last_data_cycle = data_cycle
                            # -- run-final auto-precharge --------------
                            if has_rows:
                                self.asc[b][ib] = False
                                hold = end + 1 + t_wr if w else end + 1
                                if hold > pre[u]:
                                    pre[u] = hold
                                if clipped:
                                    auto_precharge = False
                                else:
                                    # An open-row hit pending in another
                                    # context keeps the row open (the
                                    # policy's more_hits term); under
                                    # all_open a same-internal-bank
                                    # context always sits on this very
                                    # row, so close_predicted is False.
                                    other_hit = False
                                    if nwin > 1:
                                        for other in win:
                                            if other is vc0:
                                                continue
                                            opos = other[5]
                                            if (
                                                other[2][opos] == ib
                                                and other[3][opos] == row
                                            ):
                                                other_hit = True
                                                break
                                    if other_hit:
                                        auto_precharge = False
                                    elif run < rem:
                                        # Run ends on a row transition:
                                        # the paper policy closes it.
                                        auto_precharge = True
                                    else:
                                        auto_precharge = self.predict[
                                            b
                                        ][ib]
                                if auto_precharge:
                                    orow[u] = -1
                                    release = (
                                        end
                                        + 1
                                        + (t_wr if w else 0)
                                        + t_rp
                                    )
                                    if release > act[u]:
                                        act[u] = release
                                    self.ib_ap[u] += 1
                            # -- front-end transaction accounting ------
                            txn = outstanding.get(txn_id)
                            if txn is None:
                                raise ProtocolError(
                                    f"bank {b} issued for unknown "
                                    f"transaction {txn_id}"
                                )
                            txn.done += run
                            if data_cycle > txn.last_data_cycle:
                                txn.last_data_cycle = data_cycle
                            # -- cursor advance ------------------------
                            self.sched_col[b] += run
                            rem -= run
                            vc0[6] = rem
                            vc0[10] = True
                            vc0[5] = pos + run
                            if rem == 0:
                                del win[0]
                            cost = run
                    if cost == 0:
                        # -- generic walk (AccessScheduler._try_column):
                        #    at most one column, polarity rule intact;
                        #    blocked open-row contexts feed the bound.
                        issue_vc = None
                        position = 0
                        for vcx in win:
                            matches = (
                                last_dir < 0 or vcx[8] == last_dir
                            )
                            if not matches and position != 0:
                                # A polarity reversal pends upstream.
                                break
                            pins = (
                                last_col + 1
                                if matches
                                else last_col + 1 + ta
                            )
                            if has_rows:
                                posx = vcx[5]
                                ux = base_u + vcx[2][posx]
                                if orow[ux] == vcx[3][posx]:
                                    x = col[ux]
                                    if pins > x:
                                        x = pins
                                    if t >= x:
                                        issue_vc = vcx
                                        break
                                    if x < nb:
                                        nb = x
                            else:
                                if t >= pins:
                                    issue_vc = vcx
                                    break
                                if pins < nb:
                                    nb = pins
                            if not matches:
                                break
                            position += 1
                        if issue_vc is not None:
                            # -- single column (AccessScheduler
                            #    ._issue_column + device.column_at +
                            #    staging + note_issue, fused) ---------
                            vcx = issue_vc
                            posx = vcx[5]
                            wx = vcx[8]
                            if has_rows:
                                ibx = vcx[2][posx]
                                rowx = vcx[3][posx]
                            else:
                                ibx = 0
                                rowx = 0
                            if not vcx[10]:
                                self._note_first(b, vcx, ibx)
                            ap = (
                                self._decide_ap(b, vcx, ibx, rowx, win)
                                if has_rows
                                else False
                            )
                            if last_dir >= 0 and last_dir != wx:
                                self.turnarounds[b] += 1
                            last_col_a[b] = t
                            last_dir_a[b] = wx
                            if has_rows:
                                ux = base_u + ibx
                                hold = t + 1 + t_wr if wx else t + 1
                                if hold > pre[ux]:
                                    pre[ux] = hold
                                if ap:
                                    orow[ux] = -1
                                    release = (
                                        t
                                        + 1
                                        + (t_wr if wx else 0)
                                        + t_rp
                                    )
                                    if release > act[ux]:
                                        act[ux] = release
                                    self.ib_ap[ux] += 1
                            local_word = vcx[0][posx]
                            index = vcx[1][posx]
                            txn_id = vcx[7]
                            if wx:
                                storage[local_word] = vcx[9][index]
                                self.writes[b] += 1
                                data_cycle = t + t_wr
                                slot = self.wsu[b]._slots.get(txn_id)
                                if slot is None:
                                    raise ProtocolError(
                                        f"write commit for unknown "
                                        f"transaction {txn_id}"
                                    )
                                slot.committed += 1
                                if data_cycle > slot.commit_cycle:
                                    slot.commit_cycle = data_cycle
                            else:
                                self.reads[b] += 1
                                data_cycle = t + self.read_lat
                                slot = self.rsu[b]._slots.get(txn_id)
                                if slot is None:
                                    raise ProtocolError(
                                        f"data for unknown read "
                                        f"transaction {txn_id}"
                                    )
                                slot.received.append(
                                    (
                                        index,
                                        storage.get(local_word, 0),
                                    )
                                )
                                if data_cycle > slot.last_data_cycle:
                                    slot.last_data_cycle = data_cycle
                            txn = outstanding.get(txn_id)
                            if txn is None:
                                raise ProtocolError(
                                    f"bank {b} issued for unknown "
                                    f"transaction {txn_id}"
                                )
                            txn.done += 1
                            if data_cycle > txn.last_data_cycle:
                                txn.last_data_cycle = data_cycle
                            self.sched_col[b] += 1
                            remaining = vcx[6] - 1
                            vcx[6] = remaining
                            vcx[10] = True
                            vcx[5] = posx + 1
                            if remaining == 0:
                                del win[position]
                            cost = 1
            if cost or progressed:
                a = acct[b]
                if t > a:
                    if pending[b]:
                        stalled_c[b] += t - a
                    else:
                        idle_c[b] += t - a
                if cost == 0:
                    cost = 1
                busy_c[b] += cost
                acct[b] = t + cost
                pending[b] = True if rqf or win else False
                processed = True
                # After a burst of `cost` columns the cursor only clears
                # the run at t + cost — nothing (in particular no row
                # operation for the next element) may fire inside it.
                floor = t + cost
                if floor >= h:
                    bound[b] = floor
                    return True
                t = floor
                continue
            # ---- failed probe: jump to the accumulated bound ---------
            t = nb if nb > t else t + 1

    def _do_refresh(self, b: int, cycle: int) -> None:
        """SDRAMDevice.maybe_refresh: close every row, block activates
        for ``t_rfc``, advance the deadline."""
        orow = self.orow
        act = self.act
        release = cycle + self.t_rfc
        base_u = b * self.nib
        for u in range(base_u, base_u + self.nib):
            orow[u] = -1
            if release > act[u]:
                act[u] = release
        self.nr[b] = cycle + self.refresh_interval
        self.refreshes[b] += 1

    def _note_first(self, b: int, vc: list, internal_bank: int) -> None:
        """AccessScheduler._note_first_operation: train the predictor on
        a request's very first operation."""
        row_continues = self.lrs[b][vc[C_FIB]] == vc[C_FROW]
        if self.paper[b]:
            self.predict[b][internal_bank] = not row_continues
        else:
            self.policies[b].note_first_operation(
                internal_bank, row_continues
            )
        vc[C_ISSUED] = True

    def _decide_ap(
        self, b: int, vc: list, internal_bank: int, row: int, win: list
    ) -> bool:
        """AccessScheduler._decide_auto_precharge (the ManageRow lines)
        — cursor mode only, so the self-term is the precomputed
        row-transition marker."""
        asc = self.asc[b]
        row_hit = not asc[internal_bank]
        asc[internal_bank] = False
        paper = self.paper[b]
        if not paper:
            self.policies[b].observe_access(internal_bank, row_hit)
        more_hits = vc[C_REM] > 1 and vc[C_NSR][vc[C_POS]]
        if not more_hits:
            for other in win:
                if other is vc:
                    continue
                opos = other[C_POS]
                if (
                    other[C_IB][opos] == internal_bank
                    and other[C_ROW][opos] == row
                ):
                    more_hits = True
                    break
        if paper:
            # PaperPolicy.decide, with close_predicted evaluated lazily
            # (it has no side effects and only gates the last access).
            if more_hits:
                return False
            if vc[C_REM] == 1:
                if self._close_predicted(win, internal_bank, row):
                    return True
                return self.predict[b][internal_bank]
            return True
        return self.policies[b].decide(
            internal_bank=internal_bank,
            last_of_request=vc[C_REM] == 1,
            more_hits=more_hits,
            close_predicted=self._close_predicted(win, internal_bank, row),
        )

    @staticmethod
    def _close_predicted(win: list, internal_bank: int, row: int) -> bool:
        """``bank_close_predict``: some context needs a different row in
        this internal bank.  (The issuing context never matches its own
        coordinates, so no exclusion is needed.)"""
        for vc in win:
            pos = vc[C_POS]
            if vc[C_IB][pos] == internal_bank and vc[C_ROW][pos] != row:
                return True
        return False

    @staticmethod
    def _hits_open(win: list, exclude: list, internal_bank: int, open_row: int) -> bool:
        """``bank_hit_predict``: another context's current address hits
        the row open in ``internal_bank``."""
        for vc in win:
            if vc is exclude:
                continue
            pos = vc[C_POS]
            if vc[C_IB][pos] == internal_bank and vc[C_ROW][pos] == open_row:
                return True
        return False

    def broadcast_vector(
        self,
        txn_id: int,
        vector,
        is_write: bool,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
        call_cycle: int,
    ) -> int:
        """All banks observe one VEC_READ / VEC_WRITE: the SoA
        counterpart of looping BankController.broadcast over the banks.
        ``cycle`` is the delivery cycle (last broadcast bus cycle),
        ``call_cycle`` the front end's current cycle (ledger anchor).
        Returns the summed element count."""
        schedules = broadcast_schedules(
            vector.base,
            vector.stride,
            vector.length,
            self.num_banks,
            self._geom,
        )
        power_of_two = self._pla.entry(vector.stride).power_of_two
        # The _queue tail, fused across the bank loop with the shared
        # state in locals (this runs once per bank per broadcast — the
        # broadcast side's hot path).
        stage = self.wsu if is_write else self.rsu
        rqfs = self._rqf
        wins = self._win
        bound = self.bound
        acct = self.acct
        pending = self.pending
        idle_c = self.idle_c
        fhc_busy = self.fhc_busy
        fifo_depth = self.fifo_depth
        max_ctx = self.max_ctx
        bypass = self.bypass
        fhc_latency = self.fhc_latency
        iw = int(is_write)
        total = 0
        for b in range(self.n):
            schedule = schedules[b]
            expected = 0 if schedule is None else schedule.count
            stage[b].open(txn_id, expected)
            if expected == 0:
                continue
            rqf = rqfs[b]
            if len(rqf) >= fifo_depth:
                raise CapacityError(
                    f"bank {b}: request FIFO overflow "
                    f"(depth {fifo_depth})"
                )
            win = wins[b]
            idle = not rqf and not win
            if power_of_two:
                # FHP shift/mask path (+ FHP-to-VC bypass when idle).
                ready = cycle + 1 if (bypass and idle) else cycle + 2
            else:
                # FirstHitCalculator.schedule: serial multiply-add.
                start = cycle + 1
                if fhc_busy[b] > start:
                    start = fhc_busy[b]
                finish = start + fhc_latency
                fhc_busy[b] = finish
                self.fhc_calcs[b] += 1
                ready = finish if (bypass and idle) else finish + 1
            rqf.append((ready, txn_id, iw, write_line, schedule))
            if not pending[b]:
                # The bank shows "stalled" from the broadcast call cycle
                # on; everything before it was idle.
                a = acct[b]
                if call_cycle > a:
                    idle_c[b] += call_cycle - a
                    acct[b] = call_cycle
                pending[b] = True
            if len(rqf) == 1 and len(win) < max_ctx and ready < bound[b]:
                bound[b] = ready
            total += expected
        return total

    def broadcast_explicit(
        self,
        b: int,
        txn_id: int,
        addresses: Tuple[int, ...],
        is_write: bool,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
        call_cycle: int,
    ) -> int:
        """BankController.broadcast_explicit: snoop the address stream
        for this bank's elements."""
        mask = self.num_banks - 1
        shift = self.bank_bits
        mine = tuple(
            (address >> shift, index)
            for index, address in enumerate(addresses)
            if (address & mask) == b
        )
        return self.broadcast_pairs(
            b, txn_id, mine, is_write, cycle, write_line, None, call_cycle
        )

    def broadcast_pairs(
        self,
        b: int,
        txn_id: int,
        pairs: Tuple[Tuple[int, int], ...],
        is_write: bool,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
        stride: Optional[int],
        call_cycle: int,
    ) -> int:
        """BankController.broadcast_pairs: queue pre-partitioned
        ``(local_word, index)`` elements (explicit snoop with
        ``stride=None``, or the cache-line/block interleave front end
        with the real stride's FHP/FHC timing)."""
        schedule = pairs_schedule(pairs, self._geom)
        power_of_two = (
            None if stride is None else self._pla.entry(stride).power_of_two
        )
        return self._queue(
            b,
            txn_id,
            schedule,
            is_write,
            cycle,
            write_line,
            call_cycle,
            power_of_two,
        )

    def _queue(
        self,
        b: int,
        txn_id: int,
        schedule: Optional[BankSchedule],
        is_write: bool,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
        call_cycle: int,
        power_of_two: Optional[bool],
    ) -> int:
        """Common broadcast tail: open staging (expected may be zero),
        run the FHP/FHC ready-cycle pipeline, append the FIFO entry and
        maintain the ledger and the next-event bound."""
        expected = 0 if schedule is None else schedule.count
        if is_write:
            self.wsu[b].open(txn_id, expected)
        else:
            self.rsu[b].open(txn_id, expected)
        if expected == 0:
            return 0
        rqf = self._rqf[b]
        if len(rqf) >= self.fifo_depth:
            raise CapacityError(
                f"bank {b}: request FIFO overflow "
                f"(depth {self.fifo_depth})"
            )
        win = self._win[b]
        idle = not rqf and not win
        if power_of_two is None:
            # Explicit snoop: ready one cycle after the broadcast ends.
            ready = cycle + 1
        elif power_of_two:
            # FHP shift/mask path (+ FHP-to-VC bypass when idle).
            ready = cycle + 1 if (self.bypass and idle) else cycle + 2
        else:
            # FirstHitCalculator.schedule: serial multiply-add.
            start = cycle + 1
            if self.fhc_busy[b] > start:
                start = self.fhc_busy[b]
            finish = start + self.fhc_latency
            self.fhc_busy[b] = finish
            self.fhc_calcs[b] += 1
            ready = finish if (self.bypass and idle) else finish + 1
        rqf.append((ready, txn_id, int(is_write), write_line, schedule))
        if not self.pending[b]:
            # The bank shows "stalled" from the broadcast call cycle on
            # (_BankComponent.account sees the FIFO entry that same
            # kernel cycle); everything before it was idle.
            self._settle(b, call_cycle)
            if call_cycle > self.acct[b]:
                self.acct[b] = call_cycle
            self.pending[b] = True
        if len(rqf) == 1 and len(win) < self.max_ctx and ready < self.bound[b]:
            self.bound[b] = ready
        return expected

    # ------------------------------------------------------------- #
    # Writeback
    # ------------------------------------------------------------- #

    def writeback(self) -> None:
        """Restore the object graph from the arrays so statistics,
        functional peeks and subsequent runs (any backend) see exactly
        the state the run produced.  Safe to call on any exit path."""
        nib = self.nib
        for b, bank in enumerate(self.banks):
            device = bank.device
            device._last_column_cycle = self.last_col[b]
            last_dir = self.last_dir[b]
            device._last_was_write = None if last_dir < 0 else bool(last_dir)
            device.reads = self.reads[b]
            device.writes = self.writes[b]
            device.turnarounds = self.turnarounds[b]
            bank.fhc._busy_until = self.fhc_busy[b]
            bank.fhc.calculations = self.fhc_calcs[b]
            scheduler = bank.scheduler
            scheduler.activates = self.sched_act[b]
            scheduler.precharges = self.sched_pre[b]
            scheduler.columns = self.sched_col[b]
            bank._skip_until = 0
            if self.has_rows:
                device.refreshes = self.refreshes[b]
                if device._next_refresh is not None:
                    device._next_refresh = self.nr[b]
                base_u = b * nib
                for ib, internal in enumerate(device.banks):
                    u = base_u + ib
                    row = self.orow[u]
                    internal.open_row = None if row < 0 else row
                    internal._activate_timer._ready_at = self.act[u]
                    internal._column_timer._ready_at = self.col[u]
                    internal._precharge_timer._ready_at = self.pre[u]
                    internal.activates = self.ib_act[u]
                    internal.precharges = self.ib_pre[u]
                    internal.auto_precharges = self.ib_ap[u]

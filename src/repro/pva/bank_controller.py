"""The Bank Controller (BC): one per memory bank (section 5.2.2).

Ties together the parallelizing logic (FirstHit Predict, Request FIFO /
Register File, FirstHit Calculate), the access scheduler with its vector
contexts, and the staging units.  Each BC owns one memory device (SDRAM
module or idealized SRAM) and is driven by the PVA front end:

* :meth:`broadcast` — the BC's view of a VEC_READ / VEC_WRITE on the bus;
* :meth:`tick` — one clock of scheduler work, returning any column
  operation issued so the front end can track transaction completion;
* :meth:`drain_read` / :meth:`release_write` — the STAGE_READ merge and
  write-buffer release.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.pla import K1PLA
from repro.errors import CapacityError
from repro.params import SystemParams
from repro.pva.fhp import FirstHitCalculator, FirstHitPredictor
from repro.pva.request import BCRequest
from repro.pva.schedule import pairs_schedule, stride_schedule
from repro.pva.scheduler import AccessScheduler, IssuedColumn
from repro.pva.staging import ReadStagingUnit, WriteStagingUnit
from repro.sim.events import HORIZON
from repro.types import Vector

__all__ = ["BankController"]


class BankController:
    """One bank's parallelizing logic, scheduler and staging units."""

    __slots__ = (
        "bank",
        "params",
        "device",
        "fhp",
        "fhc",
        "rqf",
        "scheduler",
        "read_staging",
        "write_staging",
        "time_skip",
        "fast_gating",
        "acted",
        "_geom",
        "_skip_until",
        "_check_refresh",
    )

    def __init__(self, bank: int, params: SystemParams, device, pla: K1PLA):
        self.bank = bank
        self.params = params
        self.device = device
        self.fhp = FirstHitPredictor(bank, params, pla)
        self.fhc = FirstHitCalculator(params)
        self.rqf: Deque[BCRequest] = deque()
        self.scheduler = AccessScheduler(params, device, bank)
        self.read_staging = ReadStagingUnit(params.max_transactions)
        self.write_staging = WriteStagingUnit(params.max_transactions)
        #: Set by the front end when the time-skip run loop is active;
        #: gates the per-bank stall cache below.
        self.time_skip = False
        #: The PR's tick-mode fast path: reuse the quiet/stall gating the
        #: skip loop already proves cycle-exact, even under plain ticking.
        self.fast_gating = params.uses_precompute
        #: Did the last tick() change any state (refresh, dequeue, row or
        #: column operation)?  The system component reads this instead of
        #: diffing operation counters.
        self.acted = False
        #: Geometry descriptor handed to the hit-schedule precompute;
        #: ``None`` (unknown device, or precompute disabled) keeps every
        #: request on the incremental expansion path.
        self._geom = (
            getattr(device, "schedule_geometry", None)
            if params.uses_precompute
            else None
        )
        #: Refresh is consulted per tick only when the device actually
        #: schedules refreshes (None-ness of next_refresh_cycle is fixed
        #: at construction).
        self._check_refresh = (
            device.has_rows and device.next_refresh_cycle is not None
        )
        #: :meth:`tick` is a provable no-op on every cycle strictly
        #: before this bound (recomputed after an unproductive tick,
        #: reset whenever a broadcast hands the bank new work).
        self._skip_until = 0

    # ----------------------------------------------------------------- #
    # Bus-side interface
    # ----------------------------------------------------------------- #

    @property
    def is_idle(self) -> bool:
        """No queued requests and no active vector contexts."""
        return not self.rqf and self.scheduler.is_idle

    def broadcast(
        self,
        txn_id: int,
        vector: Vector,
        is_write: bool,
        cycle: int,
        write_line: Optional[Tuple[int, ...]] = None,
    ) -> int:
        """Observe a vector command on the BC bus.

        Performs the FHP evaluation in the broadcast cycle, opens the
        staging buffer (expected count may be zero), and — when this bank
        owns elements — queues a register-file entry whose ``ready_cycle``
        encodes the FHP/FHC pipeline and bypass paths.

        Returns this bank's element count for the transaction.
        """
        if self._geom is not None:
            # Broadcast-time precompute: the full hit table, memoized on
            # the vector/geometry value, replaces the FHP subvector
            # entirely (both evaluate theorem 4.3 — the equivalence is
            # fuzzed by tests/pva/test_schedule.py).  The vector context
            # runs on the table's cursor, so the incremental sub/step
            # fields stay unused.
            schedule = stride_schedule(
                vector.base,
                vector.stride,
                vector.length,
                self.bank,
                self.params.num_banks,
                self._geom,
            )
            sub = None
            expected = 0 if schedule is None else schedule.count
        else:
            schedule = None
            sub = self.fhp.predict(vector)
            expected = 0 if sub is None else sub.count
        if is_write:
            self.write_staging.open(txn_id, expected)
        else:
            self.read_staging.open(txn_id, expected)
        if expected == 0:
            return 0
        if len(self.rqf) >= self.params.request_fifo_depth:
            raise CapacityError(
                f"bank {self.bank}: request FIFO overflow "
                f"(depth {self.params.request_fifo_depth})"
            )
        idle = not self.rqf and not self.scheduler.window
        if self.fhp.stride_is_power_of_two(vector.stride):
            # FHP completed the address (shift/mask); the request is
            # visible to the scheduler after the RQF write, or a cycle
            # earlier via the FHP-to-VC bypass when the BC is idle.
            if self.params.bypass_paths and idle:
                ready_cycle = cycle + 1
            else:
                ready_cycle = cycle + 2
        else:
            # FHC multiply-add path; arrival is the RQF-write cycle.
            ready_cycle = self.fhc.schedule(cycle + 1, idle)
        if schedule is not None:
            local_first = schedule.local_words[0]
            local_step = 0  # cursor mode never reads the step
        else:
            local_first = self.fhp.local_address(sub.first_address)
            local_step = self.fhp.local_step(sub)
        req = BCRequest(
            txn_id=txn_id,
            vector=vector,
            is_write=is_write,
            sub=sub,
            local_first=local_first,
            local_step=local_step,
            acc=True,
            ready_cycle=ready_cycle,
            write_line=write_line,
            schedule=schedule,
        )
        self.rqf.append(req)
        self._skip_until = 0
        return expected

    def broadcast_explicit(
        self,
        txn_id: int,
        addresses: Tuple[int, ...],
        is_write: bool,
        cycle: int,
        write_line: Optional[Tuple[int, ...]] = None,
    ) -> int:
        """Observe an explicit scatter/gather command (vector-indirect or
        bit-reversed, chapter 7).

        The bank snoops the broadcast address stream and bit-masks out its
        own elements — no FirstHit evaluation, so the request is ready one
        cycle after the broadcast finishes.  Returns the element count.
        """
        mask = self.params.num_banks - 1
        shift = self.params.bank_bits
        mine = tuple(
            (address >> shift, index)
            for index, address in enumerate(addresses)
            if (address & mask) == self.bank
        )
        return self.broadcast_pairs(
            txn_id, mine, is_write, cycle, write_line=write_line
        )

    def broadcast_pairs(
        self,
        txn_id: int,
        pairs: Tuple[Tuple[int, int], ...],
        is_write: bool,
        cycle: int,
        write_line: Optional[Tuple[int, ...]] = None,
        stride: Optional[int] = None,
    ) -> int:
        """Queue a request whose owned elements were determined outside
        the word-interleave FirstHit path, as ``(local_word, index)``
        pairs in index order.

        Two users: the explicit-command snoop path (``stride=None`` —
        ready one cycle after the broadcast), and the cache-line/block
        interleaved front end of section 4.1.3, where ``W*N`` logical
        FirstHit units per bank controller produce the pairs; the latter
        passes the stride so the FHP/FHC pipeline timing (power-of-two
        fast path, multiply-add otherwise, bypass paths) applies exactly
        as in the word-interleaved unit.
        """
        expected = len(pairs)
        if is_write:
            self.write_staging.open(txn_id, expected)
        else:
            self.read_staging.open(txn_id, expected)
        if not pairs:
            return 0
        if len(self.rqf) >= self.params.request_fifo_depth:
            raise CapacityError(
                f"bank {self.bank}: request FIFO overflow "
                f"(depth {self.params.request_fifo_depth})"
            )
        idle = self.is_idle
        if stride is None:
            ready_cycle = cycle + 1
        elif self.fhp.stride_is_power_of_two(stride):
            if self.params.bypass_paths and idle:
                ready_cycle = cycle + 1
            else:
                ready_cycle = cycle + 2
        else:
            ready_cycle = self.fhc.schedule(cycle + 1, idle)
        self.rqf.append(
            BCRequest(
                txn_id=txn_id,
                vector=None,
                is_write=is_write,
                sub=None,
                local_first=pairs[0][0],
                local_step=0,
                acc=True,
                ready_cycle=ready_cycle,
                write_line=write_line,
                explicit=pairs,
                schedule=(
                    pairs_schedule(pairs, self._geom)
                    if self._geom is not None
                    else None
                ),
            )
        )
        self._skip_until = 0
        return expected

    # ----------------------------------------------------------------- #
    # Time-skip lower bounds
    # ----------------------------------------------------------------- #

    def quiet_at(self, cycle: int) -> bool:
        """May the front end skip this bank's :meth:`tick` this cycle?

        True while the bank sits inside a cached stall window
        (``_skip_until``, computed after an unproductive tick) or is
        fully idle.  Purely an optimization gate: the cached bound is
        reset whenever a broadcast delivers new work, and every other
        input to :meth:`tick` is bank-private, so a skipped call is
        exactly a call that would have done nothing.
        """
        return cycle < self._skip_until or self.idle_at(cycle)

    def idle_at(self, cycle: int) -> bool:
        """Is :meth:`tick` provably a no-op this cycle?

        True when nothing is queued, no vector context is in flight, and
        no auto-refresh is due — the front end's fast path skips the
        call entirely.  Conservative: False merely means "tick normally".
        """
        if self.rqf or self.scheduler.window:
            return False
        if self.device.has_rows:
            refresh = self.device.next_refresh_cycle
            if refresh is not None and refresh <= cycle:
                return False
        return True

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest cycle at or after ``cycle`` at which this bank
        controller could do observable work: the next auto-refresh, the
        request-FIFO head's ready cycle (when a vector context is free
        to receive it), or the access scheduler's own bound.  A request
        stuck behind a full context window contributes nothing — it can
        only unblock through a context completing, which is an event in
        its own right.

        The result is cached in ``_skip_until``: every input is
        bank-private except the broadcasts, which reset the cache, so
        the bound stays valid until the bank next ticks or hears a
        command — both the front end's skip loop and :meth:`quiet_at`
        read it for free in between.
        """
        if cycle < self._skip_until:
            return self._skip_until
        bound = HORIZON
        if self.device.has_rows:
            refresh = self.device.next_refresh_cycle
            if refresh is not None and refresh < bound:
                bound = refresh
        if self.rqf and self.scheduler.has_free_context:
            ready = self.rqf[0].ready_cycle
            if ready < bound:
                bound = ready
        sched = self.scheduler.next_event_cycle(cycle)
        if sched < bound:
            bound = sched
        if bound <= cycle:
            return cycle
        self._skip_until = bound
        return bound

    # ----------------------------------------------------------------- #
    # Clock
    # ----------------------------------------------------------------- #

    def tick(self, cycle: int) -> Optional[IssuedColumn]:
        """One cycle of bank-controller work.

        Dequeues at most one ACC-complete request into a free vector
        context, then lets the access scheduler issue at most one SDRAM
        operation.  Issued columns are routed to the staging units and
        reported to the caller for transaction accounting.
        """
        if self._check_refresh and self.device.maybe_refresh(cycle):
            self.acted = True
            return None  # the device is refreshing; no command this cycle
        progressed = False
        sched = self.scheduler
        if self.rqf and len(sched.window) < sched._max_contexts:
            head = self.rqf[0]
            if head.ready_cycle <= cycle:
                self.rqf.popleft()
                sched.inject(head, cycle)
                progressed = True
        issued = sched.tick(cycle)
        if issued is not None:
            self.acted = True
            if issued.is_write:
                self.write_staging.commit(issued.txn_id, issued.data_cycle)
            else:
                self.read_staging.collect(
                    issued.txn_id, issued.index, issued.value or 0, issued.data_cycle
                )
        elif sched.acted or progressed:
            self.acted = True
        else:
            self.acted = False
            if self.time_skip or self.fast_gating:
                # An unproductive cycle: cache how long time alone keeps
                # it so (next_event_cycle stores the bound in
                # _skip_until), letting the front end skip the next
                # ticks outright.
                self.next_event_cycle(cycle)
        return issued

    # ----------------------------------------------------------------- #
    # Staging-side interface
    # ----------------------------------------------------------------- #

    def read_complete(self, txn_id: int, cycle: int) -> bool:
        """This bank's transaction-complete line for a read."""
        return self.read_staging.complete(txn_id, cycle)

    def write_complete(self, txn_id: int, cycle: int) -> bool:
        """This bank's transaction-complete line for a write."""
        return self.write_staging.complete(txn_id, cycle)

    def drain_read(self, txn_id: int) -> List[Tuple[int, int]]:
        """STAGE_READ: hand over ``(index, value)`` pairs and free the
        buffer."""
        return self.read_staging.drain(txn_id)

    def release_write(self, txn_id: int) -> None:
        self.write_staging.release(txn_id)

"""Vector Contexts (VCs): the access scheduler's in-flight request slots.

Each VC holds one vector request whose accesses are ready to issue and
expands its address sequence with a shift-and-add (start at the FirstHit
address, repeatedly add ``S << (m - s)``; section 4.2, steps 6-7).  The
window holds up to four VCs in the prototype; arbitration, row prediction
and the polarity rule live in :mod:`repro.pva.scheduler`.
"""

from __future__ import annotations

from typing import Optional

from repro.pva.request import BCRequest

__all__ = ["VectorContext"]


class VectorContext:
    """One in-flight vector request inside a bank controller."""

    __slots__ = (
        "req",
        "local_addr",
        "index",
        "remaining",
        "issued_any",
        "entered_cycle",
        "_pos",
    )

    def __init__(self, req: BCRequest, entered_cycle: int):
        self.req = req
        self._pos = 0
        if req.explicit is not None:
            self.local_addr, self.index = req.explicit[0]
        else:
            self.local_addr = req.local_first
            self.index = req.sub.first_index
        self.remaining = req.count
        #: Has the very first operation for this request been issued?
        #: (drives the autoprecharge predictor update, section 5.2.2).
        self.issued_any = False
        self.entered_cycle = entered_cycle

    @property
    def is_write(self) -> bool:
        return self.req.is_write

    @property
    def done(self) -> bool:
        return self.remaining == 0

    @property
    def next_local_addr(self) -> Optional[int]:
        """Address of the element after the current one, if any — used by
        the row-management heuristic to decide auto-precharge."""
        if self.remaining <= 1:
            return None
        if self.req.explicit is not None:
            return self.req.explicit[self._pos + 1][0]
        return self.local_addr + self.req.local_step

    def write_value(self) -> int:
        """Datum for the current element of a scattered write, pulled from
        the staged line by vector index."""
        line = self.req.write_line
        if line is None:
            raise ValueError("write context has no staged data")
        return line[self.index]

    def advance(self) -> None:
        """Step to the next owned element: a shift-and-add for base-stride
        requests, a list walk for explicit scatter/gather."""
        self.remaining -= 1
        self.issued_any = True
        if self.req.explicit is not None:
            self._pos += 1
            if self.remaining > 0:
                self.local_addr, self.index = self.req.explicit[self._pos]
            return
        self.local_addr += self.req.local_step
        self.index += self.req.sub.delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"VC(txn={self.req.txn_id} {kind} addr={self.local_addr} "
            f"left={self.remaining})"
        )

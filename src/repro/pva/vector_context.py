"""Vector Contexts (VCs): the access scheduler's in-flight request slots.

Each VC holds one vector request whose accesses are ready to issue.  Two
expansion modes exist, selected by the request:

* **Schedule cursor** (the fast path): the request carries a
  precomputed :class:`~repro.pva.schedule.BankSchedule` and the VC is a
  cursor into its flat arrays — current local word, vector index and
  decoded ``(internal bank, row)`` coordinates are plain tuple reads.
* **Incremental** (the reference path, and the only option for devices
  without a known geometry): expand the address sequence with a
  shift-and-add (start at the FirstHit address, repeatedly add
  ``S << (m - s)``; section 4.2, steps 6-7), or walk an explicit
  ``(local_word, index)`` list.

Both modes produce the identical address/index sequence; the property
suite in ``tests/pva/test_schedule.py`` fuzzes the equivalence.  The
window holds up to four VCs in the prototype; arbitration, row
prediction and the polarity rule live in :mod:`repro.pva.scheduler`.
"""

from __future__ import annotations

from typing import Optional

from repro.pva.request import BCRequest

__all__ = ["VectorContext"]


class VectorContext:
    """One in-flight vector request inside a bank controller."""

    __slots__ = (
        "req",
        "is_write",
        "local_addr",
        "index",
        "remaining",
        "issued_any",
        "entered_cycle",
        "cur_ib",
        "cur_row",
        "_pos",
    )

    def __init__(self, req: BCRequest, entered_cycle: int):
        self.req = req
        #: Mirrored from the request: read every cycle by the polarity
        #: rule, so a plain slot beats a delegating property.
        self.is_write = req.is_write
        self._pos = 0
        sched = req.schedule
        if sched is not None:
            self.local_addr = sched.local_words[0]
            self.index = sched.indices[0]
            #: Decoded device coordinates of the current element (fast
            #: path only; ``None`` flags the incremental mode to the
            #: scheduler, which falls back to ``device.locate``).
            self.cur_ib: Optional[int] = sched.ibanks[0]
            self.cur_row: Optional[int] = sched.rows[0]
            self.remaining = sched.count
        else:
            self.cur_ib = None
            self.cur_row = None
            if req.explicit is not None:
                self.local_addr, self.index = req.explicit[0]
            else:
                self.local_addr = req.local_first
                self.index = req.sub.first_index
            self.remaining = req.count
        #: Has the very first operation for this request been issued?
        #: (drives the autoprecharge predictor update, section 5.2.2).
        self.issued_any = False
        self.entered_cycle = entered_cycle

    @property
    def done(self) -> bool:
        return self.remaining == 0

    @property
    def next_local_addr(self) -> Optional[int]:
        """Address of the element after the current one, if any — used by
        the row-management heuristic to decide auto-precharge."""
        if self.remaining <= 1:
            return None
        sched = self.req.schedule
        if sched is not None:
            return sched.local_words[self._pos + 1]
        if self.req.explicit is not None:
            return self.req.explicit[self._pos + 1][0]
        return self.local_addr + self.req.local_step

    @property
    def next_hits_same_row(self) -> bool:
        """Row-transition marker: does the next owned element hit the
        same (internal bank, row) as the current one?  Fast path only —
        precomputed at broadcast time, ``False`` on the last element."""
        return self.req.schedule.next_same_row[self._pos]

    def write_value(self) -> int:
        """Datum for the current element of a scattered write, pulled from
        the staged line by vector index."""
        line = self.req.write_line
        if line is None:
            raise ValueError("write context has no staged data")
        return line[self.index]

    def advance(self) -> None:
        """Step to the next owned element: a cursor bump on the
        precomputed table, a shift-and-add for incremental base-stride
        requests, a list walk for explicit scatter/gather."""
        self.remaining -= 1
        self.issued_any = True
        sched = self.req.schedule
        if sched is not None:
            pos = self._pos + 1
            self._pos = pos
            if self.remaining > 0:
                self.local_addr = sched.local_words[pos]
                self.index = sched.indices[pos]
                self.cur_ib = sched.ibanks[pos]
                self.cur_row = sched.rows[pos]
            return
        if self.req.explicit is not None:
            self._pos += 1
            if self.remaining > 0:
                self.local_addr, self.index = self.req.explicit[self._pos]
            return
        self.local_addr += self.req.local_step
        self.index += self.req.sub.delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"VC(txn={self.req.txn_id} {kind} addr={self.local_addr} "
            f"left={self.remaining})"
        )

"""Row-management policies for the access scheduler.

The paper's ManageRow heuristic (section 5.2.2) is the default; the
alternatives exist for the ablation study called out in DESIGN.md:

* ``paper``   — predict-line driven ManageRow with the one-bit
  autoprecharge predictor (the prototype's policy).
* ``close``   — closed-page: auto-precharge every access.
* ``open``    — open-page: never auto-precharge; rows close only via the
  explicit precharge a conflicting context forces.
* ``history`` — an Alpha 21174-style predictor (section 2.4.1): a four-bit
  hit/miss history per internal bank indexes a 16-bit precharge policy
  register.

A policy answers one question per column access — close the row with this
access or leave it open — given the scheduler's predict lines.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError

__all__ = ["make_row_policy", "PaperPolicy", "ClosePolicy", "OpenPolicy", "HistoryPolicy"]


class PaperPolicy:
    """The prototype's ManageRow algorithm.

    The decision inputs (more-hit / close predict lines, the predictor
    bit) are computed by the scheduler and passed in, mirroring the wired-
    OR lines shared among the vector contexts.
    """

    name = "paper"

    def __init__(self, internal_banks: int):
        self.autoprecharge_predict = [False] * internal_banks

    def note_first_operation(
        self, internal_bank: int, row_continues: bool
    ) -> None:
        """Train on the first operation of a new vector request.

        The predictor detects "most simple loops": when consecutive vector
        requests keep landing in the same row, the row should stay open at
        request completion; when they do not, it should be auto-precharged.
        (The draft paper's prose reads "set to one if the row ... matches",
        which closes exactly the rows loops reuse — we take that as a typo
        and store the precharge decision as *not* row-continues, which is
        the reading consistent with the stated goal.  The effect is
        measurable: with the literal reading, unit-stride kernels pay one
        activate per command per bank instead of one per row.)
        """
        self.autoprecharge_predict[internal_bank] = not row_continues

    def observe_access(self, internal_bank: int, row_hit: bool) -> None:
        """ManageRow needs no per-access history."""

    def decide(
        self,
        internal_bank: int,
        last_of_request: bool,
        more_hits: bool,
        close_predicted: bool,
    ) -> bool:
        """True = auto-precharge with this access."""
        if more_hits:
            return False
        if last_of_request:
            if close_predicted:
                return True
            return self.autoprecharge_predict[internal_bank]
        return True


class ClosePolicy:
    """Closed-page: precharge after every access."""

    name = "close"

    def __init__(self, internal_banks: int):
        pass

    def note_first_operation(self, internal_bank: int, row_continues: bool) -> None:
        pass

    def observe_access(self, internal_bank: int, row_hit: bool) -> None:
        pass

    def decide(
        self,
        internal_bank: int,
        last_of_request: bool,
        more_hits: bool,
        close_predicted: bool,
    ) -> bool:
        return True


class OpenPolicy:
    """Open-page: never auto-precharge."""

    name = "open"

    def __init__(self, internal_banks: int):
        pass

    def note_first_operation(self, internal_bank: int, row_continues: bool) -> None:
        pass

    def observe_access(self, internal_bank: int, row_hit: bool) -> None:
        pass

    def decide(
        self,
        internal_bank: int,
        last_of_request: bool,
        more_hits: bool,
        close_predicted: bool,
    ) -> bool:
        return False


class HistoryPolicy:
    """Alpha 21174-style adaptive hot-row management (section 2.4.1).

    A four-bit shift register per internal bank records whether recent
    accesses hit the open row; a 16-bit policy register, indexed by the
    history, says whether to keep the row open.  The default register
    leaves a row open when at least two of the last four accesses hit —
    the majority policy the 21174 documentation suggests software set.
    """

    name = "history"

    @staticmethod
    def majority_policy_register() -> int:
        """Bit ``h`` set = leave open for history ``h`` (1 bits = hits)."""
        register = 0
        for history in range(16):
            if bin(history).count("1") >= 2:
                register |= 1 << history
        return register

    def __init__(self, internal_banks: int, policy_register: int = -1):
        if policy_register == -1:
            policy_register = self.majority_policy_register()
        if not 0 <= policy_register < (1 << 16):
            raise ConfigurationError(
                "policy_register must be a 16-bit value, got "
                f"{policy_register}"
            )
        self.policy_register = policy_register
        self.history: List[int] = [0] * internal_banks

    def note_first_operation(self, internal_bank: int, row_continues: bool) -> None:
        pass

    def observe_access(self, internal_bank: int, row_hit: bool) -> None:
        self.history[internal_bank] = (
            (self.history[internal_bank] << 1) | int(row_hit)
        ) & 0xF

    def decide(
        self,
        internal_bank: int,
        last_of_request: bool,
        more_hits: bool,
        close_predicted: bool,
    ) -> bool:
        if more_hits:
            # Definite knowledge beats prediction, as in the PVA design.
            return False
        leave_open = bool(
            self.policy_register >> self.history[internal_bank] & 1
        )
        return not leave_open


_POLICIES = {
    "paper": PaperPolicy,
    "close": ClosePolicy,
    "open": OpenPolicy,
    "history": HistoryPolicy,
}


def make_row_policy(name: str, internal_banks: int):
    """Instantiate a row policy by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown row policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return factory(internal_banks)

"""The full PVA memory system: front end, vector bus, bank controllers.

Implements the overall operation of section 5.2.6 under the evaluation
assumptions of section 6.2 (an infinitely fast CPU that issues vector
commands as soon as bus and transaction resources allow):

* **VEC_READ** — one request cycle broadcasts ``<B, S, id>`` to all bank
  controllers; each gathers its subvector in parallel; when every BC
  releases the transaction-complete line the front end issues a
  **STAGE_READ** (one command cycle) and the BCs merge the 128-byte line
  over 16 data cycles of the 128-bit BC bus.
* **VEC_WRITE** — the front end first issues **STAGE_WRITE** and streams
  the line over 16 data cycles, then broadcasts the VEC_WRITE command;
  the transaction-complete line deasserting signals commitment.

The bus multiplexes requests and data (one action per cycle) and pays one
turnaround cycle when the data direction between memory controller and
BCs reverses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.decode import TopologyDecoder
from repro.core.pla import shared_k1_pla
from repro.errors import ConfigurationError, ProtocolError, VectorSpecError
from repro.interleave.logical import LogicalBankView
from repro.interleave.schemes import InterleaveScheme
from repro.params import SystemParams
from repro.bus.vector_bus import VectorBus
from repro.pva.bank_controller import BankController
from repro.pva.soa import SoaBankAutomaton, soa_eligible
from repro.pva.window import WindowBankAutomaton, window_eligible
from repro.sdram.device import DeviceStats, SDRAMDevice
from repro.sim.events import HORIZON, time_skip_enabled
from repro.sim.kernel import PassiveComponent, SimKernel
from repro.sim.runner import Watchdog
from repro.sim.stats import BusStats, RunResult
from repro.types import AccessType, ExplicitCommand, VectorCommand

AnyCommand = Union[VectorCommand, ExplicitCommand]


def _command_words(command: AnyCommand) -> frozenset:
    """The set of global word addresses a command touches."""
    if isinstance(command, ExplicitCommand):
        return frozenset(command.addresses)
    return frozenset(command.vector.addresses())


def _command_length(command: AnyCommand) -> int:
    """Element count of either command flavour."""
    if isinstance(command, ExplicitCommand):
        return command.length
    return command.vector.length

__all__ = ["PVAMemorySystem"]


@dataclass
class _Transaction:
    """Front-end bookkeeping for one outstanding bus transaction."""

    txn_id: int
    trace_index: int
    is_write: bool
    issue_cycle: int
    expected: int
    done: int = 0
    last_data_cycle: int = -1
    staged: bool = False  # reads: queued for / undergoing STAGE_READ
    words: frozenset = frozenset()  # writes: word addresses, for WAW gating


class _FrontEnd:
    """The PVA front end as a kernel component: transaction-id releases
    plus the one-bus-action-per-cycle arbitration between staging
    transfers and new command broadcasts.  Owns the shared per-run
    bookkeeping the bank and completion components report into."""

    name = "front-end"

    def __init__(
        self,
        system: "PVAMemorySystem",
        commands: Sequence[AnyCommand],
        bus: VectorBus,
        capture_data: bool,
    ):
        self.system = system
        self.commands = commands
        self.bus = bus
        self.free_ids: Deque[int] = deque(
            range(system.params.max_transactions)
        )
        self.outstanding: Dict[int, _Transaction] = {}
        self.stage_queue: Deque[_Transaction] = deque()
        self.releases: List[Tuple[int, int]] = []  # (cycle, txn_id)
        self.read_lines: Optional[List[Optional[Tuple[int, ...]]]] = None
        read_order: List[int] = []
        if capture_data:
            read_order = [
                i for i, c in enumerate(commands) if c.access is AccessType.READ
            ]
            self.read_lines = [None] * len(read_order)
        self.read_slot_of_trace = {t: i for i, t in enumerate(read_order)}
        self.latencies: List[int] = [0] * len(commands)
        self.next_cmd = 0
        self.end_cycle = 0
        self.next_issue_allowed = 0
        self.issue_interval = system.params.issue_interval
        # WAW-gate cache: the next command's word footprint (computed at
        # most once per trace index, only when a hazard check needs it).
        self._waw_words: frozenset = frozenset()
        self._waw_cmd = -1

    def _words_for_next(self, command: AnyCommand) -> frozenset:
        if self._waw_cmd != self.next_cmd:
            self._waw_words = _command_words(command)
            self._waw_cmd = self.next_cmd
        return self._waw_words

    def _waw_blocked(self) -> bool:
        """Write-after-write hazard gate: a write broadcast stalls while
        an older outstanding *write* covers any of its words.

        The bank schedulers freely reorder same-polarity contexts across
        internal banks — the polarity rule orders only mixed read/write
        pairs (a younger context with the opposite polarity of an older
        one can never overtake it), so WAW is the one cross-command
        hazard the banks cannot see.  Holding the younger broadcast
        until every conflicting older write retires restores program
        order per word; commands with disjoint write footprints — every
        paper kernel — never stall.
        """
        command = self.commands[self.next_cmd]
        if command.access is not AccessType.WRITE:
            return False
        words = None
        for txn in self.outstanding.values():
            if not txn.is_write:
                continue
            if words is None:
                words = self._words_for_next(command)
            if not words.isdisjoint(txn.words):
                return True
        return False

    def done(self) -> bool:
        """Loop-exit predicate: trace drained, no outstanding work."""
        return self.next_cmd >= len(self.commands) and not self.outstanding

    def tick(self, cycle: int) -> bool:
        acted = False
        # -- release transaction ids whose staging transfer finished --
        if self.releases:
            still: List[Tuple[int, int]] = []
            for when, txn_id in self.releases:
                if when <= cycle:
                    self.free_ids.append(txn_id)
                    acted = True
                else:
                    still.append((when, txn_id))
            self.releases = still

        # -- one bus action per cycle ---------------------------------
        # New commands take the bus while transaction ids remain (the
        # infinitely-fast-CPU front end keeps the banks fed); staged
        # read returns drain otherwise.  Staging strictly first would
        # starve broadcasts whenever completions return quickly.
        if self.bus.is_free(cycle):
            commands = self.commands
            issue_first = (
                self.next_cmd < len(commands)
                and self.free_ids
                and cycle >= self.next_issue_allowed
                and not self._waw_blocked()
            )
            if self.stage_queue and not issue_first:
                acted = True
                txn = self.stage_queue.popleft()
                line = self.system._assemble_line(
                    txn.txn_id, commands[txn.trace_index]
                )
                if self.read_lines is not None:
                    self.read_lines[
                        self.read_slot_of_trace[txn.trace_index]
                    ] = line
                transfer_end = self.bus.stage_read(cycle)
                self.releases.append((transfer_end, txn.txn_id))
                self.latencies[txn.trace_index] = (
                    transfer_end - txn.issue_cycle
                )
                del self.outstanding[txn.txn_id]
                self.end_cycle = max(self.end_cycle, transfer_end)
            elif issue_first:
                acted = True
                command = commands[self.next_cmd]
                txn_id = self.free_ids.popleft()
                request_cycles = (
                    command.broadcast_cycles
                    if isinstance(command, ExplicitCommand)
                    else 1
                )
                if command.access is AccessType.READ:
                    # A multi-cycle broadcast (explicit address
                    # stream) only finishes delivering addresses on
                    # its last bus cycle; the banks cannot act on the
                    # command before then.
                    self.system._broadcast(
                        txn_id, command, cycle + request_cycles - 1, None, cycle
                    )
                    self.bus.broadcast_request(cycle, request_cycles)
                    self.outstanding[txn_id] = _Transaction(
                        txn_id=txn_id,
                        trace_index=self.next_cmd,
                        is_write=False,
                        issue_cycle=cycle,
                        expected=_command_length(command),
                    )
                else:
                    # STAGE_WRITE command + data cycles, then the
                    # VEC_WRITE (or explicit-address) broadcast.
                    line = self.system._write_line(command)
                    vec_write_cycle = self.bus.stage_write(
                        cycle, request_cycles
                    )
                    # As for reads: the banks see the command once the
                    # last broadcast cycle has delivered the final
                    # addresses, so a write cannot commit while its
                    # address stream is still on the bus.
                    self.system._broadcast(
                        txn_id,
                        command,
                        vec_write_cycle + request_cycles - 1,
                        line,
                        cycle,
                    )
                    self.outstanding[txn_id] = _Transaction(
                        txn_id=txn_id,
                        trace_index=self.next_cmd,
                        is_write=True,
                        issue_cycle=cycle,
                        expected=_command_length(command),
                        words=self._words_for_next(command),
                    )
                self.next_cmd += 1
                self.next_issue_allowed = cycle + self.issue_interval
        return acted

    def note_issue(self, bank: int, issued) -> None:
        """A bank issued a column for one of our transactions."""
        txn = self.outstanding.get(issued.txn_id)
        if txn is None:
            raise ProtocolError(
                f"bank {bank} issued for unknown "
                f"transaction {issued.txn_id}"
            )
        txn.done += 1
        if issued.data_cycle > txn.last_data_cycle:
            txn.last_data_cycle = issued.data_cycle

    def next_event_cycle(self, cycle: int) -> int:
        target = HORIZON
        for when, _txn_id in self.releases:
            if when < target:
                target = when
        if self.stage_queue and self.bus.busy_until < target:
            # A staged read waits only for the bus.
            target = self.bus.busy_until
        if self.next_cmd < len(self.commands) and self.free_ids:
            # The next broadcast waits for the bus and the issue
            # throttle; with no free transaction id it instead
            # unblocks via a completion/release event.
            gate = self.bus.busy_until
            if self.next_issue_allowed > gate:
                gate = self.next_issue_allowed
            if gate < target:
                target = gate
        return target

    def account(self, start: int, end: int) -> Tuple[int, int, int]:
        span = end - start
        if (
            self.next_cmd < len(self.commands)
            or self.outstanding
            or self.releases
            or self.stage_queue
        ):
            return (0, span, 0)
        return (0, 0, span)


class _BusComponent(PassiveComponent):
    """The vector bus is a pure occupancy state machine — every transfer
    is scheduled by the front end, so its tick never acts; it exists as
    a component for the attribution ledger (busy = carrying a request,
    data, or turnaround; never stalled)."""

    name = "vector-bus"

    def __init__(self, bus: VectorBus):
        self.bus = bus

    def account(self, start: int, end: int) -> Tuple[int, int, int]:
        busy_end = min(end, self.bus.busy_until)
        busy = busy_end - start if busy_end > start else 0
        return (busy, 0, (end - start) - busy)


class _BankComponent:
    """One bank controller under the kernel.  Acting means observable
    progress: a column issue, a request injected into a vector context,
    a row activate/precharge, or an auto-refresh."""

    def __init__(self, bank: BankController, front: _FrontEnd, time_skip: bool):
        self.bank = bank
        self.front = front
        self.time_skip = time_skip
        self.name = f"bank-{bank.bank}"
        #: Both gate inputs are constant for the run; fold them once.
        self._gated = time_skip or bank.fast_gating
        #: Whether idle_at's refresh probe can ever fire (the None-ness
        #: of next_refresh_cycle never changes mid-run).
        self._no_refresh = (
            not bank.device.has_rows
            or bank.device.next_refresh_cycle is None
        )

    def tick(self, cycle: int) -> bool:
        bank = self.bank
        if self._gated:
            # Inlined bank.quiet_at(cycle) — this is the hottest probe
            # in the simulator.
            if cycle < bank._skip_until:
                return False
            if not bank.rqf and not bank.scheduler.window:
                if self._no_refresh:
                    return False
                refresh = bank.device.next_refresh_cycle
                if refresh is None or refresh > cycle:
                    return False
        issued = bank.tick(cycle)
        if issued is not None:
            self.front.note_issue(bank.bank, issued)
            return True
        # The controller records whether the tick changed any state
        # (refresh, dequeue, row operation) — no counter diffing needed.
        return bank.acted

    def next_event_cycle(self, cycle: int) -> int:
        return self.bank.next_event_cycle(cycle)

    def account(self, start: int, end: int) -> Tuple[int, int, int]:
        span = end - start
        if self.bank.rqf or self.bank.scheduler.window:
            return (0, span, 0)
        return (0, 0, span)


class _CompletionUnit:
    """The front end's view of the wired-AND transaction-complete lines:
    retires transactions whose banks have all reported and whose last
    data cycle has passed.  Ticks after the banks so a completion lands
    in the same cycle as the final column issue, exactly as the
    monolithic loop ordered it."""

    name = "completion"

    def __init__(self, front: _FrontEnd):
        self.front = front

    def tick(self, cycle: int) -> bool:
        front = self.front
        # Allocation-free fast path for the common nothing-completes
        # cycle; the mutating pass below snapshots the dict first.
        for txn in front.outstanding.values():
            if (
                txn.done >= txn.expected
                and cycle >= txn.last_data_cycle
                and (txn.is_write or not txn.staged)
            ):
                break
        else:
            return False
        acted = False
        for txn in list(front.outstanding.values()):
            if txn.done < txn.expected or cycle < txn.last_data_cycle:
                continue
            if txn.is_write:
                acted = True
                for bank in front.system.banks:
                    bank.release_write(txn.txn_id)
                front.free_ids.append(txn.txn_id)
                front.latencies[txn.trace_index] = (
                    cycle + 1 - txn.issue_cycle
                )
                del front.outstanding[txn.txn_id]
                front.end_cycle = max(front.end_cycle, cycle + 1)
            elif not txn.staged:
                acted = True
                txn.staged = True
                front.stage_queue.append(txn)
        return acted

    def next_event_cycle(self, cycle: int) -> int:
        target = HORIZON
        for txn in self.front.outstanding.values():
            # A fully-issued transaction completes once its last data
            # cycle passes.  Already-staged reads are the bus's problem,
            # bounded by the front end.
            if txn.done >= txn.expected and not txn.staged:
                if txn.last_data_cycle < target:
                    target = txn.last_data_cycle
        return target

    def account(self, start: int, end: int) -> Tuple[int, int, int]:
        span = end - start
        if self.front.outstanding:
            return (0, span, 0)
        return (0, 0, span)


class PVAMemorySystem:
    """The paper's prototype: M word-interleaved banks behind a PVA unit.

    Parameters
    ----------
    params:
        Geometry and microarchitecture (defaults: the section 5.1
        prototype).
    device_factory:
        Callable producing one memory-device model per bank; defaults to
        the SDRAM module.  The PVA-SRAM comparison system passes an SRAM
        factory here.
    name:
        Label used in results.
    """

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        device_factory: Optional[Callable[[SystemParams], object]] = None,
        name: str = "pva-sdram",
        interleave: Optional[InterleaveScheme] = None,
    ):
        self.params = params or SystemParams()
        self.name = name
        if device_factory is None:
            device_factory = lambda p: SDRAMDevice(
                p.sdram, bus_turnaround=p.bus_turnaround
            )
        if interleave is not None and (
            interleave.num_banks != self.params.num_banks
        ):
            raise ConfigurationError(
                f"interleave scheme has {interleave.num_banks} banks but "
                f"the system has {self.params.num_banks}"
            )
        #: Non-word interleave (cache-line or block, section 4.1.3);
        #: None selects the prototype's word-interleaved fast path.
        self.interleave = (
            None
            if interleave is None or interleave.chunk_words == 1
            else interleave
        )
        self._logical_view = (
            LogicalBankView(self.interleave)
            if self.interleave is not None
            else None
        )
        self._device_factory = device_factory
        self._pla = shared_k1_pla(self.params.num_banks)
        #: Channel/rank-aware decode of the word-interleaved topology
        #: (None under a non-word interleave scheme, which predates the
        #: topology layer and stays single-channel).
        self.decoder: Optional[TopologyDecoder] = (
            TopologyDecoder(self.params.topology)
            if self.interleave is None
            else None
        )
        #: Live structure-of-arrays backend during a sim_mode="soa" run
        #: (broadcasts route to it instead of the bank controllers).
        self._soa: Optional[SoaBankAutomaton] = None
        self.banks: List[BankController] = [
            BankController(
                bank, self.params, device_factory(self.params), self._pla
            )
            for bank in range(self.params.num_banks)
        ]

    def reset(self) -> None:
        """Discard all device contents and statistics, returning the
        system to its just-constructed state.  Idempotent."""
        self.banks = [
            BankController(
                bank, self.params, self._device_factory(self.params), self._pla
            )
            for bank in range(self.params.num_banks)
        ]

    def attach_command_logs(self):
        """Attach a :class:`~repro.sim.trace_log.CommandLog` to every
        bank's device and return them (indexed by bank number).

        Call before :meth:`run`; the logs then capture the full SDRAM
        command stream of the run, one logic-analyzer trace per device.
        """
        from repro.sim.trace_log import CommandLog

        logs = []
        for bank in self.banks:
            log = CommandLog()
            bank.device.log = log
            logs.append(log)
        return logs

    # ----------------------------------------------------------------- #
    # Functional memory access (test setup / verification)
    # ----------------------------------------------------------------- #

    def _locate(self, address: int) -> Tuple[int, int]:
        if self.interleave is not None:
            return (
                self.interleave.bank_of(address),
                self.interleave.local_word(address),
            )
        bank = address & (self.params.num_banks - 1)
        return bank, address >> self.params.bank_bits

    def locate(self, address: int):
        """Full physical decode of ``address`` — the system-wide bank
        plus its (channel, rank, bank-within-rank) coordinates.  Only
        defined for the word-interleaved topology path."""
        if self.decoder is None:
            raise ConfigurationError(
                "locate() needs the word-interleaved topology decoder; "
                "this system runs a custom interleave scheme"
            )
        return self.decoder.coordinates(address)

    def poke(self, address: int, value: int) -> None:
        """Write one word directly into the backing storage."""
        bank, local = self._locate(address)
        self.banks[bank].device.poke(local, value)

    def peek(self, address: int) -> int:
        """Read one word directly from the backing storage."""
        bank, local = self._locate(address)
        return self.banks[bank].device.peek(local)

    # ----------------------------------------------------------------- #
    # Trace execution
    # ----------------------------------------------------------------- #

    def run(
        self,
        commands: Sequence[VectorCommand],
        capture_data: bool = False,
    ) -> RunResult:
        """Execute a command trace; return cycle counts and statistics.

        The run is driven by the shared simulation kernel
        (:class:`repro.sim.kernel.SimKernel`): the front end, the vector
        bus, every bank controller and the completion unit register as
        clocked components, and the kernel owns watchdog probing, the
        time-skip advance, and the per-component cycle-attribution
        ledger surfaced as :attr:`RunResult.attribution`.
        """
        for command in commands:
            if _command_length(command) > self.params.max_vector_length:
                raise VectorSpecError(
                    f"command length {_command_length(command)} exceeds "
                    f"the cache-line command limit "
                    f"{self.params.max_vector_length}; split it first"
                )
        bus = VectorBus(self.params)
        watchdog = Watchdog(len(commands), system=self.name)
        #: Fast path: jump idle gaps via next-event lower bounds instead
        #: of ticking through them.  Cycle-exact with the reference loop
        #: — skipped cycles are exactly the iterations that change no
        #: state (see repro.sim.events).
        time_skip = time_skip_enabled(self.params)
        for bank in self.banks:
            bank.time_skip = time_skip

        front = _FrontEnd(self, commands, bus, capture_data)
        kernel = SimKernel(watchdog=watchdog, time_skip=time_skip)
        kernel.register(front)
        kernel.register(_BusComponent(bus))
        #: Array backends: all sixteen bank controllers stepped as one
        #: flat automaton (repro.pva.soa), with sim_mode="window" adding
        #: the closed-form chain resolution on top (repro.pva.window).
        #: capture_data runs take the SoA automaton even under "window"
        #: (the ISSUE contract: silent, bit-exact fallback), and any
        #: ineligible run (attached command logs, exotic devices, dirty
        #: bank state) falls back to the object components — same
        #: results, object speed.
        mode = self.params.sim_mode
        if (
            mode == "window"
            and not capture_data
            and window_eligible(self.banks)
        ):
            self._soa = WindowBankAutomaton(
                self.banks, front, bus, self.params, kernel
            )
            kernel.register(self._soa)
        elif mode in ("soa", "window") and soa_eligible(self.banks):
            self._soa = SoaBankAutomaton(self.banks, front, bus, self.params)
            kernel.register(self._soa)
        else:
            for bank in self.banks:
                kernel.register(_BankComponent(bank, front, time_skip))
        kernel.register(_CompletionUnit(front))
        try:
            exit_cycle = kernel.run(front.done)
        finally:
            # Restore the object graph before any statistics are read
            # (or before the caller inspects state after a timeout).
            if self._soa is not None:
                self._soa.writeback()
                self._soa = None

        total_cycles = max(front.end_cycle, exit_cycle)
        device_stats = self._aggregate_device_stats()
        reads = sum(1 for c in commands if c.access is AccessType.READ)
        writes = len(commands) - reads
        result = RunResult(
            system=self.name,
            cycles=total_cycles,
            commands=len(commands),
            read_commands=reads,
            write_commands=writes,
            elements_read=sum(
                _command_length(c)
                for c in commands
                if c.access is AccessType.READ
            ),
            elements_written=sum(
                _command_length(c)
                for c in commands
                if c.access is AccessType.WRITE
            ),
            device=device_stats,
            bus=bus.stats,
            command_latencies=front.latencies,
            attribution=kernel.finalize(total_cycles),
        )
        if front.read_lines is not None:
            result.read_lines = [
                line if line is not None else ()
                for line in front.read_lines
            ]
        return result

    # ----------------------------------------------------------------- #
    # Internals
    # ----------------------------------------------------------------- #

    def _broadcast(
        self,
        txn_id: int,
        command: AnyCommand,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
        call_cycle: int,
    ) -> None:
        is_write = command.access is AccessType.WRITE
        soa = self._soa
        total = 0
        if self.interleave is not None:
            total = self._broadcast_interleaved(
                txn_id, command, cycle, write_line, call_cycle
            )
        elif isinstance(command, ExplicitCommand):
            if soa is not None:
                for b in range(len(self.banks)):
                    total += soa.broadcast_explicit(
                        b,
                        txn_id,
                        command.addresses,
                        is_write,
                        cycle,
                        write_line,
                        call_cycle,
                    )
            else:
                for bank in self.banks:
                    total += bank.broadcast_explicit(
                        txn_id,
                        command.addresses,
                        is_write,
                        cycle,
                        write_line=write_line,
                    )
        elif soa is not None:
            total = soa.broadcast_vector(
                txn_id, command.vector, is_write, cycle, write_line, call_cycle
            )
        else:
            for bank in self.banks:
                total += bank.broadcast(
                    txn_id,
                    command.vector,
                    is_write,
                    cycle,
                    write_line=write_line,
                )
        if total != _command_length(command):
            raise ProtocolError(
                f"banks claimed {total} elements of a "
                f"{_command_length(command)}-element command — element "
                "partition broken"
            )

    def _broadcast_interleaved(
        self,
        txn_id: int,
        command: AnyCommand,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
        call_cycle: int,
    ) -> int:
        """Broadcast under a cache-line/block interleave (section 4.1.3).

        Each bank controller conceptually runs ``W*N`` copies of the
        word-interleave FirstHit logic over the logical-bank view; the
        resulting per-bank element lists are queued with the same
        FHP/FHC pipeline timing as the word-interleaved unit.
        """
        scheme = self.interleave
        is_write = command.access is AccessType.WRITE
        total = 0
        if isinstance(command, ExplicitCommand):
            per_bank = {bank.bank: [] for bank in self.banks}
            for index, address in enumerate(command.addresses):
                per_bank[scheme.bank_of(address)].append(
                    (scheme.local_word(address), index)
                )
            stride = None
        else:
            per_bank = {
                bank.bank: [
                    (scheme.local_word(address), index)
                    for index, address in self._logical_view.subvector(
                        command.vector, bank.bank
                    )
                ]
                for bank in self.banks
            }
            stride = command.vector.stride
        soa = self._soa
        if soa is not None:
            for bank in self.banks:
                total += soa.broadcast_pairs(
                    bank.bank,
                    txn_id,
                    tuple(per_bank[bank.bank]),
                    is_write,
                    cycle,
                    write_line,
                    stride,
                    call_cycle,
                )
        else:
            for bank in self.banks:
                total += bank.broadcast_pairs(
                    txn_id,
                    tuple(per_bank[bank.bank]),
                    is_write,
                    cycle,
                    write_line=write_line,
                    stride=stride,
                )
        return total

    def _write_line(self, command: AnyCommand) -> Tuple[int, ...]:
        """The cache line the front end stages ahead of a VEC_WRITE.

        ``command.data`` supplies real data; performance traces without
        data scatter a deterministic placeholder pattern.
        """
        length = _command_length(command)
        if command.data is not None:
            if len(command.data) < length:
                raise VectorSpecError(
                    f"write command carries {len(command.data)} words for a "
                    f"{length}-element vector"
                )
            return tuple(command.data)
        return tuple(range(length))

    def _assemble_line(
        self, txn_id: int, command: AnyCommand
    ) -> Tuple[int, ...]:
        """Merge the staged subvectors of all banks into the dense line
        returned to the processor (gathered in index order)."""
        line: List[int] = [0] * _command_length(command)
        for bank in self.banks:
            for index, value in bank.drain_read(txn_id):
                line[index] = value
        return tuple(line)

    def _aggregate_device_stats(self) -> DeviceStats:
        total = DeviceStats()
        for bank in self.banks:
            stats = bank.device.stats()
            total.activates += stats.activates
            total.precharges += stats.precharges
            total.auto_precharges += stats.auto_precharges
            total.reads += stats.reads
            total.writes += stats.writes
            total.turnarounds += stats.turnarounds
        return total

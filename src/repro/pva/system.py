"""The full PVA memory system: front end, vector bus, bank controllers.

Implements the overall operation of section 5.2.6 under the evaluation
assumptions of section 6.2 (an infinitely fast CPU that issues vector
commands as soon as bus and transaction resources allow):

* **VEC_READ** — one request cycle broadcasts ``<B, S, id>`` to all bank
  controllers; each gathers its subvector in parallel; when every BC
  releases the transaction-complete line the front end issues a
  **STAGE_READ** (one command cycle) and the BCs merge the 128-byte line
  over 16 data cycles of the 128-bit BC bus.
* **VEC_WRITE** — the front end first issues **STAGE_WRITE** and streams
  the line over 16 data cycles, then broadcasts the VEC_WRITE command;
  the transaction-complete line deasserting signals commitment.

The bus multiplexes requests and data (one action per cycle) and pays one
turnaround cycle when the data direction between memory controller and
BCs reverses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pla import shared_k1_pla
from repro.errors import ConfigurationError, ProtocolError, VectorSpecError
from repro.interleave.logical import LogicalBankView
from repro.interleave.schemes import InterleaveScheme
from repro.params import SystemParams
from repro.bus.vector_bus import VectorBus
from repro.pva.bank_controller import BankController
from repro.sdram.device import DeviceStats, SDRAMDevice
from repro.sim.events import HORIZON, time_skip_enabled
from repro.sim.runner import Watchdog
from repro.sim.stats import BusStats, RunResult
from repro.types import AccessType, ExplicitCommand, VectorCommand

AnyCommand = Union[VectorCommand, ExplicitCommand]


def _command_length(command: AnyCommand) -> int:
    """Element count of either command flavour."""
    if isinstance(command, ExplicitCommand):
        return command.length
    return command.vector.length

__all__ = ["PVAMemorySystem"]


@dataclass
class _Transaction:
    """Front-end bookkeeping for one outstanding bus transaction."""

    txn_id: int
    trace_index: int
    is_write: bool
    issue_cycle: int
    expected: int
    done: int = 0
    last_data_cycle: int = -1
    staged: bool = False  # reads: queued for / undergoing STAGE_READ


class PVAMemorySystem:
    """The paper's prototype: M word-interleaved banks behind a PVA unit.

    Parameters
    ----------
    params:
        Geometry and microarchitecture (defaults: the section 5.1
        prototype).
    device_factory:
        Callable producing one memory-device model per bank; defaults to
        the SDRAM module.  The PVA-SRAM comparison system passes an SRAM
        factory here.
    name:
        Label used in results.
    """

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        device_factory: Optional[Callable[[SystemParams], object]] = None,
        name: str = "pva-sdram",
        interleave: Optional[InterleaveScheme] = None,
    ):
        self.params = params or SystemParams()
        self.name = name
        if device_factory is None:
            device_factory = lambda p: SDRAMDevice(
                p.sdram, bus_turnaround=p.bus_turnaround
            )
        if interleave is not None and (
            interleave.num_banks != self.params.num_banks
        ):
            raise ConfigurationError(
                f"interleave scheme has {interleave.num_banks} banks but "
                f"the system has {self.params.num_banks}"
            )
        #: Non-word interleave (cache-line or block, section 4.1.3);
        #: None selects the prototype's word-interleaved fast path.
        self.interleave = (
            None
            if interleave is None or interleave.chunk_words == 1
            else interleave
        )
        self._logical_view = (
            LogicalBankView(self.interleave)
            if self.interleave is not None
            else None
        )
        pla = shared_k1_pla(self.params.num_banks)
        self.banks: List[BankController] = [
            BankController(bank, self.params, device_factory(self.params), pla)
            for bank in range(self.params.num_banks)
        ]

    def attach_command_logs(self):
        """Attach a :class:`~repro.sim.trace_log.CommandLog` to every
        bank's device and return them (indexed by bank number).

        Call before :meth:`run`; the logs then capture the full SDRAM
        command stream of the run, one logic-analyzer trace per device.
        """
        from repro.sim.trace_log import CommandLog

        logs = []
        for bank in self.banks:
            log = CommandLog()
            bank.device.log = log
            logs.append(log)
        return logs

    # ----------------------------------------------------------------- #
    # Functional memory access (test setup / verification)
    # ----------------------------------------------------------------- #

    def _locate(self, address: int) -> Tuple[int, int]:
        if self.interleave is not None:
            return (
                self.interleave.bank_of(address),
                self.interleave.local_word(address),
            )
        bank = address & (self.params.num_banks - 1)
        return bank, address >> self.params.bank_bits

    def poke(self, address: int, value: int) -> None:
        """Write one word directly into the backing storage."""
        bank, local = self._locate(address)
        self.banks[bank].device.poke(local, value)

    def peek(self, address: int) -> int:
        """Read one word directly from the backing storage."""
        bank, local = self._locate(address)
        return self.banks[bank].device.peek(local)

    # ----------------------------------------------------------------- #
    # Trace execution
    # ----------------------------------------------------------------- #

    def run(
        self,
        commands: Sequence[VectorCommand],
        capture_data: bool = False,
    ) -> RunResult:
        """Execute a command trace; return cycle counts and statistics."""
        for command in commands:
            if _command_length(command) > self.params.max_vector_length:
                raise VectorSpecError(
                    f"command length {_command_length(command)} exceeds "
                    f"the cache-line command limit "
                    f"{self.params.max_vector_length}; split it first"
                )
        bus = VectorBus(self.params)
        free_ids: Deque[int] = deque(range(self.params.max_transactions))
        outstanding: Dict[int, _Transaction] = {}
        stage_queue: Deque[_Transaction] = deque()
        releases: List[Tuple[int, int]] = []  # (cycle, txn_id)
        read_lines: Optional[List[Optional[Tuple[int, ...]]]] = None
        read_order: List[int] = []
        if capture_data:
            read_order = [
                i for i, c in enumerate(commands) if c.access is AccessType.READ
            ]
            read_lines = [None] * len(read_order)
        read_slot_of_trace = {t: i for i, t in enumerate(read_order)}
        latencies: List[int] = [0] * len(commands)

        next_cmd = 0
        cycle = 0
        end_cycle = 0
        next_issue_allowed = 0
        issue_interval = self.params.issue_interval
        watchdog = Watchdog(len(commands), system=self.name)
        #: Fast path: jump idle gaps via next-event lower bounds instead
        #: of ticking through them.  Cycle-exact with the reference loop
        #: — skipped cycles are exactly the iterations that change no
        #: state (see repro.sim.events).
        time_skip = time_skip_enabled(self.params)
        for bank in self.banks:
            bank.time_skip = time_skip

        while next_cmd < len(commands) or outstanding:
            watchdog.check(cycle)
            #: Did this iteration change any front-end-visible state?
            #: Tracked only to decide whether computing a skip target is
            #: worthwhile; missing an action is harmless (the bound is
            #: recomputed from current state and stays conservative).
            acted = False
            # -- release transaction ids whose staging transfer finished --
            if releases:
                still: List[Tuple[int, int]] = []
                for when, txn_id in releases:
                    if when <= cycle:
                        free_ids.append(txn_id)
                        acted = True
                    else:
                        still.append((when, txn_id))
                releases = still

            # -- one bus action per cycle ---------------------------------
            # New commands take the bus while transaction ids remain (the
            # infinitely-fast-CPU front end keeps the banks fed); staged
            # read returns drain otherwise.  Staging strictly first would
            # starve broadcasts whenever completions return quickly.
            if bus.is_free(cycle):
                issue_first = (
                    next_cmd < len(commands)
                    and free_ids
                    and cycle >= next_issue_allowed
                )
                if stage_queue and not issue_first:
                    acted = True
                    txn = stage_queue.popleft()
                    line = self._assemble_line(txn.txn_id, commands[txn.trace_index])
                    if read_lines is not None:
                        read_lines[read_slot_of_trace[txn.trace_index]] = line
                    transfer_end = bus.stage_read(cycle)
                    releases.append((transfer_end, txn.txn_id))
                    latencies[txn.trace_index] = (
                        transfer_end - txn.issue_cycle
                    )
                    del outstanding[txn.txn_id]
                    end_cycle = max(end_cycle, transfer_end)
                elif issue_first:
                    acted = True
                    command = commands[next_cmd]
                    txn_id = free_ids.popleft()
                    request_cycles = (
                        command.broadcast_cycles
                        if isinstance(command, ExplicitCommand)
                        else 1
                    )
                    if command.access is AccessType.READ:
                        # A multi-cycle broadcast (explicit address
                        # stream) only finishes delivering addresses on
                        # its last bus cycle; the banks cannot act on the
                        # command before then.
                        self._broadcast(
                            txn_id, command, cycle + request_cycles - 1, None
                        )
                        bus.broadcast_request(cycle, request_cycles)
                        outstanding[txn_id] = _Transaction(
                            txn_id=txn_id,
                            trace_index=next_cmd,
                            is_write=False,
                            issue_cycle=cycle,
                            expected=_command_length(command),
                        )
                    else:
                        # STAGE_WRITE command + data cycles, then the
                        # VEC_WRITE (or explicit-address) broadcast.
                        line = self._write_line(command)
                        vec_write_cycle = bus.stage_write(
                            cycle, request_cycles
                        )
                        # As for reads: the banks see the command once the
                        # last broadcast cycle has delivered the final
                        # addresses, so a write cannot commit while its
                        # address stream is still on the bus.
                        self._broadcast(
                            txn_id,
                            command,
                            vec_write_cycle + request_cycles - 1,
                            line,
                        )
                        outstanding[txn_id] = _Transaction(
                            txn_id=txn_id,
                            trace_index=next_cmd,
                            is_write=True,
                            issue_cycle=cycle,
                            expected=_command_length(command),
                        )
                    next_cmd += 1
                    next_issue_allowed = cycle + issue_interval

            # -- clock the bank controllers -------------------------------
            for bank in self.banks:
                if time_skip and bank.quiet_at(cycle):
                    continue
                issued = bank.tick(cycle)
                if issued is not None:
                    acted = True
                    txn = outstanding.get(issued.txn_id)
                    if txn is None:
                        raise ProtocolError(
                            f"bank {bank.bank} issued for unknown "
                            f"transaction {issued.txn_id}"
                        )
                    txn.done += 1
                    if issued.data_cycle > txn.last_data_cycle:
                        txn.last_data_cycle = issued.data_cycle

            # -- transaction-complete lines -------------------------------
            for txn in list(outstanding.values()):
                if txn.done < txn.expected or cycle < txn.last_data_cycle:
                    continue
                if txn.is_write:
                    acted = True
                    for bank in self.banks:
                        bank.release_write(txn.txn_id)
                    free_ids.append(txn.txn_id)
                    latencies[txn.trace_index] = cycle + 1 - txn.issue_cycle
                    del outstanding[txn.txn_id]
                    end_cycle = max(end_cycle, cycle + 1)
                elif not txn.staged:
                    acted = True
                    txn.staged = True
                    stage_queue.append(txn)

            # -- advance time ---------------------------------------------
            # Reference loop: one cycle at a time.  Fast path: after an
            # iteration that changed nothing, jump straight to the
            # earliest cycle at which anything *could* happen — the min
            # over every component's next-event lower bound.  Any bound
            # at or below the current cycle degrades to a plain tick, so
            # underestimates cost time, never correctness.
            if time_skip and not acted:
                target = HORIZON
                for when, _txn_id in releases:
                    if when < target:
                        target = when
                if stage_queue and bus.busy_until < target:
                    # A staged read waits only for the bus.
                    target = bus.busy_until
                if next_cmd < len(commands) and free_ids:
                    # The next broadcast waits for the bus and the issue
                    # throttle; with no free transaction id it instead
                    # unblocks via a completion/release event above.
                    gate = bus.busy_until
                    if next_issue_allowed > gate:
                        gate = next_issue_allowed
                    if gate < target:
                        target = gate
                for txn in outstanding.values():
                    # A fully-issued transaction completes once its last
                    # data cycle passes.  Already-staged reads are the
                    # bus's problem, handled above.
                    if txn.done >= txn.expected and not txn.staged:
                        if txn.last_data_cycle < target:
                            target = txn.last_data_cycle
                for bank in self.banks:
                    bound = bank.next_event_cycle(cycle)
                    if bound < target:
                        target = bound
                # Never jump past the watchdog's deadline: a deadlocked
                # run must still raise SimulationTimeout.
                limit = watchdog.cycle_limit + 1
                if target > limit:
                    target = limit
                cycle = target if target > cycle else cycle + 1
            else:
                cycle += 1

        device_stats = self._aggregate_device_stats()
        reads = sum(1 for c in commands if c.access is AccessType.READ)
        writes = len(commands) - reads
        result = RunResult(
            system=self.name,
            cycles=max(end_cycle, cycle),
            commands=len(commands),
            read_commands=reads,
            write_commands=writes,
            elements_read=sum(
                _command_length(c)
                for c in commands
                if c.access is AccessType.READ
            ),
            elements_written=sum(
                _command_length(c)
                for c in commands
                if c.access is AccessType.WRITE
            ),
            device=device_stats,
            bus=bus.stats,
            command_latencies=latencies,
        )
        if read_lines is not None:
            result.read_lines = [
                line if line is not None else ()
                for line in read_lines
            ]
        return result

    # ----------------------------------------------------------------- #
    # Internals
    # ----------------------------------------------------------------- #

    def _broadcast(
        self,
        txn_id: int,
        command: AnyCommand,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
    ) -> None:
        is_write = command.access is AccessType.WRITE
        total = 0
        if self.interleave is not None:
            total = self._broadcast_interleaved(
                txn_id, command, cycle, write_line
            )
        elif isinstance(command, ExplicitCommand):
            for bank in self.banks:
                total += bank.broadcast_explicit(
                    txn_id,
                    command.addresses,
                    is_write,
                    cycle,
                    write_line=write_line,
                )
        else:
            for bank in self.banks:
                total += bank.broadcast(
                    txn_id,
                    command.vector,
                    is_write,
                    cycle,
                    write_line=write_line,
                )
        if total != _command_length(command):
            raise ProtocolError(
                f"banks claimed {total} elements of a "
                f"{_command_length(command)}-element command — element "
                "partition broken"
            )

    def _broadcast_interleaved(
        self,
        txn_id: int,
        command: AnyCommand,
        cycle: int,
        write_line: Optional[Tuple[int, ...]],
    ) -> int:
        """Broadcast under a cache-line/block interleave (section 4.1.3).

        Each bank controller conceptually runs ``W*N`` copies of the
        word-interleave FirstHit logic over the logical-bank view; the
        resulting per-bank element lists are queued with the same
        FHP/FHC pipeline timing as the word-interleaved unit.
        """
        scheme = self.interleave
        is_write = command.access is AccessType.WRITE
        total = 0
        if isinstance(command, ExplicitCommand):
            per_bank = {bank.bank: [] for bank in self.banks}
            for index, address in enumerate(command.addresses):
                per_bank[scheme.bank_of(address)].append(
                    (scheme.local_word(address), index)
                )
            stride = None
        else:
            per_bank = {
                bank.bank: [
                    (scheme.local_word(address), index)
                    for index, address in self._logical_view.subvector(
                        command.vector, bank.bank
                    )
                ]
                for bank in self.banks
            }
            stride = command.vector.stride
        for bank in self.banks:
            total += bank.broadcast_pairs(
                txn_id,
                tuple(per_bank[bank.bank]),
                is_write,
                cycle,
                write_line=write_line,
                stride=stride,
            )
        return total

    def _write_line(self, command: AnyCommand) -> Tuple[int, ...]:
        """The cache line the front end stages ahead of a VEC_WRITE.

        ``command.data`` supplies real data; performance traces without
        data scatter a deterministic placeholder pattern.
        """
        length = _command_length(command)
        if command.data is not None:
            if len(command.data) < length:
                raise VectorSpecError(
                    f"write command carries {len(command.data)} words for a "
                    f"{length}-element vector"
                )
            return tuple(command.data)
        return tuple(range(length))

    def _assemble_line(
        self, txn_id: int, command: AnyCommand
    ) -> Tuple[int, ...]:
        """Merge the staged subvectors of all banks into the dense line
        returned to the processor (gathered in index order)."""
        line: List[int] = [0] * _command_length(command)
        for bank in self.banks:
            for index, value in bank.drain_read(txn_id):
                line[index] = value
        return tuple(line)

    def _aggregate_device_stats(self) -> DeviceStats:
        total = DeviceStats()
        for bank in self.banks:
            stats = bank.device.stats()
            total.activates += stats.activates
            total.precharges += stats.precharges
            total.auto_precharges += stats.auto_precharges
            total.reads += stats.reads
            total.writes += stats.writes
            total.turnarounds += stats.turnarounds
        return total

"""Broadcast-time hit-schedule precomputation.

The paper's central observation is that ``FirstHit()``/``NextHit()``
(theorems 4.3 and 4.4) are *closed forms*: the moment a vector command
``<B, S, L>`` is broadcast, every bank controller can derive its entire
subvector — indices, local word addresses, even the decoded SDRAM
coordinates — without waiting for the per-cycle expansion to walk there.
The simulator used to exploit this only one element at a time (the
vector context's shift-and-add); this module exploits it wholesale.

A :class:`BankSchedule` is one bank's complete hit table for one vector
command, precomputed at broadcast time as flat integer tuples:

* ``indices[j]``      — vector element index of the j-th owned element
  (``K_i + j * delta``, theorem 4.4);
* ``local_words[j]``  — bank-internal word address
  (``(B + S*K_i) >> m`` plus ``j`` steps of ``(S * delta) >> m``);
* ``ibanks[j]`` / ``rows[j]`` — decoded device coordinates of that word
  under the device's interleave geometry;
* ``next_same_row[j]`` — row-transition marker: does element ``j + 1``
  hit the same (internal bank, row) as element ``j``?  This is exactly
  the ``bank_morehit_predict`` self-term of the ManageRow heuristic.

The vector contexts then *consume a cursor* into the table instead of
recomputing decode per element per cycle, and the access scheduler's
predict lines read plain ints instead of calling ``device.locate``.

**Cycle-exactness.**  The table is a pure function of
``(base, stride, length, bank, num_banks, geometry)`` and reproduces the
incremental ``first_hit``/``next_hit`` walk value for value (the
property suite in ``tests/pva/test_schedule.py`` fuzzes this over
geometries and all paper alignments).  Nothing about *when* operations
issue changes — only how their addresses are obtained — so the
differential tick-vs-skip suite holds bit-identical.

**Memoization.**  Schedules are memoized with the same content-key
discipline as the engine's result cache: the key is the full value tuple
above, never an object identity, and the cached value is immutable
(tuples only), so two vectors can share a table but can never alias
mutable state.  The memo is LRU-bounded (long-lived engine workers sweep
thousands of distinct vectors) and hooked into
:func:`repro.api.clear_caches`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.core.decode import decompose_stride

__all__ = [
    "BankSchedule",
    "stride_schedule",
    "pairs_schedule",
    "schedule_cache_info",
    "clear_schedule_cache",
]

#: LRU bound on the memoized stride-schedule table.  Sized for the full
#: evaluation grid (kernels x strides x alignments x banks) with room to
#: spare; the point is boundedness, not a tight fit.
SCHEDULE_CACHE_SIZE = 4096

#: Geometry descriptor kinds (see ``schedule_geometry`` on the devices).
_GEOM_ROTATED = "rot"
_GEOM_FLAT = "flat"


class BankSchedule:
    """One bank's precomputed hit table for one vector command.

    Immutable by construction: every field is a tuple of ints (or bools),
    so memoized instances can be shared between requests freely.

    ``run_starts``/``run_lengths`` partition the table into maximal
    same-(internal bank, row) runs — the segments the ``next_same_row``
    markers delimit.  Element positions ``run_starts[i] ..
    run_starts[i] + run_lengths[i] - 1`` share the device row
    ``rows[run_starts[i]]`` in internal bank ``ibanks[run_starts[i]]``;
    each run costs at most one activate (plus one precharge) and then
    streams its columns back to back.  The closed-form window backend
    (:mod:`repro.pva.window`) charges whole runs arithmetically off
    these segments instead of rediscovering them element by element.
    """

    __slots__ = (
        "count",
        "indices",
        "local_words",
        "ibanks",
        "rows",
        "next_same_row",
        "run_starts",
        "run_lengths",
        "mono_from",
    )

    def __init__(
        self,
        indices: Tuple[int, ...],
        local_words: Tuple[int, ...],
        ibanks: Tuple[int, ...],
        rows: Tuple[int, ...],
        next_same_row: Tuple[bool, ...],
    ):
        count = len(indices)
        self.count = count
        self.indices = indices
        self.local_words = local_words
        self.ibanks = ibanks
        self.rows = rows
        self.next_same_row = next_same_row
        starts = [0] if count else []
        for j in range(count - 1):
            if not next_same_row[j]:
                starts.append(j + 1)
        self.run_starts = tuple(starts)
        self.run_lengths = tuple(
            (starts[i + 1] if i + 1 < len(starts) else count) - starts[i]
            for i in range(len(starts))
        )
        # Smallest position p with ``ibanks[p:]`` all on one internal
        # bank: a chain starting at ``pos`` stays on a single internal
        # bank iff ``pos >= mono_from``.  The window backend's inertness
        # gates test this before pricing a chain.
        p = count - 1
        while p > 0 and ibanks[p - 1] == ibanks[p]:
            p -= 1
        self.mono_from = p if p > 0 else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BankSchedule(count={self.count}, indices={self.indices[:4]}...)"


def _decode(
    local_words: Tuple[int, ...], geometry: Tuple
) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[bool, ...]]:
    """Decode a word sequence into (ibanks, rows, next_same_row) under a
    device geometry descriptor."""
    kind = geometry[0]
    if kind == _GEOM_ROTATED:
        # SDRAM: consecutive rows rotate internal banks
        # (see SDRAMDevice.locate).
        row_bits, ib_bits = geometry[1], geometry[2]
        ib_mask = (1 << ib_bits) - 1
        ibanks = []
        rows = []
        for word in local_words:
            row_seq = word >> row_bits
            ibanks.append(row_seq & ib_mask)
            rows.append(row_seq >> ib_bits)
    elif kind == _GEOM_FLAT:
        # SRAM: a single always-open row.
        n = len(local_words)
        ibanks = [0] * n
        rows = [0] * n
    else:  # pragma: no cover - guarded by schedule_geometry discovery
        raise ValueError(f"unknown schedule geometry {geometry!r}")
    last = len(local_words) - 1
    next_same_row = tuple(
        j < last and ibanks[j + 1] == ibanks[j] and rows[j + 1] == rows[j]
        for j in range(len(local_words))
    )
    return tuple(ibanks), tuple(rows), next_same_row


@lru_cache(maxsize=256)
def _stride_pattern(stride: int, num_banks: int) -> Tuple[int, int, int, int]:
    """``(s, delta, k1, bank_bits)`` of ``stride`` over ``num_banks``.

    Split out of :func:`stride_schedule` and memoized on the tiny
    ``(stride, num_banks)`` domain: the modular inverse behind ``k1``
    (theorem 4.3) would otherwise be recomputed on every broadcast, while
    the full schedule memo below misses whenever the base moves.
    """
    decomp = decompose_stride(stride, num_banks)
    return decomp.s, decomp.delta, decomp.k1, decomp.bank_bits


@lru_cache(maxsize=SCHEDULE_CACHE_SIZE)
def stride_schedule(
    base: int,
    stride: int,
    length: int,
    bank: int,
    num_banks: int,
    geometry: Tuple,
) -> Optional[BankSchedule]:
    """The full hit table for bank ``bank`` of ``<base, stride, length>``
    over ``num_banks`` word-interleaved banks, or ``None`` for no hit.

    Pure closed-form evaluation of theorems 4.3/4.4 — value-identical to
    the incremental ``first_hit``/``next_hit`` walk and to the FHP/VC
    expansion path it replaces.
    """
    s, delta, k1, bank_bits = _stride_pattern(stride, num_banks)
    b0 = base & (num_banks - 1)
    if s == bank_bits:
        # S mod M == 0: every element lands on the base bank.
        k = 0 if bank == b0 else None
    else:
        d = (bank - b0) % num_banks
        if d & ((1 << s) - 1):
            k = None  # lemma 4.2: bank distance not a multiple of 2**s
        else:
            k = (k1 * (d >> s)) % delta
    if k is None or k >= length:
        return None
    count = (length - 1 - k) // delta + 1
    # S * delta is a multiple of M (theorem 4.4), so the shift is exact.
    local_first = (base + stride * k) >> bank_bits
    local_step = (stride * delta) >> bank_bits
    indices = tuple(range(k, k + count * delta, delta))
    if count == 1:
        local_words = (local_first,)
    else:
        local_words = tuple(
            range(local_first, local_first + count * local_step, local_step)
        )
    ibanks, rows, next_same_row = _decode(local_words, geometry)
    return BankSchedule(indices, local_words, ibanks, rows, next_same_row)


def pairs_schedule(
    pairs: Tuple[Tuple[int, int], ...], geometry: Tuple
) -> Optional[BankSchedule]:
    """A hit table for an explicit ``(local_word, index)`` pair list (the
    scatter/gather snoop path and the cache-line/block interleave front
    end).  Not memoized — the key would be the whole pair list."""
    if not pairs:
        return None
    local_words = tuple(word for word, _ in pairs)
    indices = tuple(index for _, index in pairs)
    ibanks, rows, next_same_row = _decode(local_words, geometry)
    return BankSchedule(indices, local_words, ibanks, rows, next_same_row)


def schedule_cache_info():
    """The stride-schedule memo's ``lru_cache`` statistics."""
    return stride_schedule.cache_info()


def clear_schedule_cache() -> None:
    """Drop every memoized schedule (see :func:`repro.api.clear_caches`)."""
    stride_schedule.cache_clear()
    _stride_pattern.cache_clear()

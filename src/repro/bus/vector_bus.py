"""Occupancy model of the shared vector bus (section 5.2.1).

The bus multiplexes requests and data: during a request cycle it carries
a 32-bit address, 32-bit stride, 3-bit transaction id and a command;
during data cycles it carries 64 bits (128 physical lines driven in
alternating halves to dodge per-cycle turnaround between bank
controllers).  One bus action per cycle; a one-cycle turnaround applies
when the *block* data direction between the memory controller and the
BCs reverses (read-return vs write-stream).

:class:`VectorBus` tracks busy-until state, the last data direction, and
the occupancy statistics; the PVA front end asks it to schedule the three
transfer shapes of section 5.2.6:

* a bare request broadcast (VEC_READ, or an explicit-command broadcast
  spanning several cycles);
* a read staging transfer: STAGE_READ command + ``stage_cycles`` of data;
* a write sequence: STAGE_WRITE command + data + the VEC_WRITE broadcast.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.params import SystemParams
from repro.sim.stats import BusStats

__all__ = ["VectorBus"]


class VectorBus:
    """Cycle-occupancy state machine of the vector bus."""

    __slots__ = ("params", "busy_until", "last_data_was_write", "stats")

    def __init__(self, params: SystemParams):
        self.params = params
        self.busy_until = 0
        #: Direction of the last data block: True = write data (MC->BCs),
        #: False = read data (BCs->MC), None before any data moved.
        self.last_data_was_write: Optional[bool] = None
        self.stats = BusStats()

    def is_free(self, cycle: int) -> bool:
        """Can a new bus action start this cycle?"""
        return cycle >= self.busy_until

    def next_event_cycle(self, cycle: int) -> int:
        """First cycle at or after ``cycle`` at which the bus is free —
        the bus's time-skip lower bound (meaningful only while the front
        end has an action waiting for it)."""
        return self.busy_until if self.busy_until > cycle else cycle

    def _claim(self, cycle: int) -> None:
        if not self.is_free(cycle):
            raise ProtocolError(
                f"vector bus busy until {self.busy_until}, "
                f"action attempted at {cycle}"
            )

    def broadcast_request(self, cycle: int, request_cycles: int = 1) -> int:
        """A request-only broadcast (VEC_READ or an explicit-address
        stream).  Returns the cycle the bus frees."""
        self._claim(cycle)
        self.stats.request_cycles += request_cycles
        self.busy_until = cycle + request_cycles
        return self.busy_until

    def stage_read(self, cycle: int) -> int:
        """STAGE_READ command plus the line transfer from the BCs.
        Returns the cycle the transfer (and the transaction) completes."""
        self._claim(cycle)
        turnaround = (
            self.params.bus_turnaround if self.last_data_was_write else 0
        )
        stage = self.params.channel_stage_cycles
        self.stats.request_cycles += 1
        self.stats.data_cycles += stage
        self.stats.turnaround_cycles += turnaround
        self.busy_until = cycle + 1 + turnaround + stage
        self.last_data_was_write = False
        return self.busy_until

    def stage_write(self, cycle: int, request_cycles: int = 1) -> int:
        """STAGE_WRITE command, the line transfer to the BCs, then the
        VEC_WRITE (or explicit) broadcast.  Returns the broadcast cycle —
        the moment the bank controllers see the command."""
        self._claim(cycle)
        turnaround = (
            self.params.bus_turnaround
            if self.last_data_was_write is False
            else 0
        )
        stage = self.params.channel_stage_cycles
        self.stats.request_cycles += 1 + request_cycles
        self.stats.data_cycles += stage
        self.stats.turnaround_cycles += turnaround
        broadcast_cycle = cycle + 1 + turnaround + stage
        self.busy_until = broadcast_cycle + request_cycles
        self.last_data_was_write = True
        return broadcast_cycle

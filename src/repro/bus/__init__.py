"""The shared, split-transaction vector bus (section 5.2.1)."""

from repro.bus.vector_bus import VectorBus

__all__ = ["VectorBus"]

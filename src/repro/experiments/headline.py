"""The abstract's headline numbers.

"the PVA is able to load elements up to 32.8 times faster than a
conventional memory system and 3.3 times faster than a pipelined vector
unit, without hurting normal cache line fill performance."

``headline_ratios`` measures the reproduction's equivalents over a grid:

* max speedup of PVA-SDRAM over the cache-line serial system;
* max speedup over the gathering (pipelined vector unit) system;
* the unit-stride band (cache-line serial normalized to PVA, which the
  paper reports as 100-109 %);
* the worst PVA-SDRAM vs PVA-SRAM gap (paper: at most ~15 %).

Note on the 32.8x factor: our conventional baseline counts one 20-cycle
fill per *distinct* line a command touches.  At stride 19 two consecutive
elements share a 128-byte line 13 times out of 32, so the honest fill
count is 19 per command and the measured ceiling lands near 20x; the
paper's 32.8x corresponds to a fill per element (32 x 20 cycles per
command), i.e. no intra-line reuse in its serial model.  Construct the
baseline with per-element accounting to reproduce the paper's factor —
``headline_ratios`` reports both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.engine import ExperimentEngine
from repro.experiments.grid import GridResults, run_grid

__all__ = ["HeadlineRatios", "headline_ratios", "measure_headline"]


@dataclass(frozen=True)
class HeadlineRatios:
    """Measured counterparts of the abstract's claims."""

    max_speedup_vs_cacheline: float
    max_speedup_vs_cacheline_at: Tuple[str, int]
    max_speedup_vs_gathering: float
    max_speedup_vs_gathering_at: Tuple[str, int]
    unit_stride_band: Tuple[float, float]
    worst_sram_gap: float

    def summary(self) -> Dict[str, object]:
        return {
            "max_speedup_vs_cacheline": round(self.max_speedup_vs_cacheline, 1),
            "at": self.max_speedup_vs_cacheline_at,
            "max_speedup_vs_gathering": round(self.max_speedup_vs_gathering, 2),
            "gathering_at": self.max_speedup_vs_gathering_at,
            "unit_stride_band_pct": (
                round(self.unit_stride_band[0] * 100),
                round(self.unit_stride_band[1] * 100),
            ),
            "worst_sram_gap_pct": round(self.worst_sram_gap * 100, 1),
        }


def measure_headline(
    kernels: Sequence[str] = ("copy", "scale", "swap"),
    elements: int = 1024,
    engine: Optional[ExperimentEngine] = None,
) -> HeadlineRatios:
    """Run the grid the headline numbers need and extract the ratios.

    Submits through ``engine`` (parallel execution and result caching);
    the default is a private inline engine.
    """
    grid = run_grid(kernels=kernels, elements=elements, engine=engine)
    return headline_ratios(grid)


def headline_ratios(grid: GridResults) -> HeadlineRatios:
    """Extract the headline ratios from an executed grid.

    The grid must include stride 1 (for the unit-stride band) and should
    include the large/prime strides for the maxima to be meaningful.
    """
    best_cache = 0.0
    best_cache_at: Tuple[str, int] = ("", 0)
    best_gather = 0.0
    best_gather_at: Tuple[str, int] = ("", 0)
    unit_lo: Optional[float] = None
    unit_hi: Optional[float] = None
    worst_gap = 0.0
    for kernel in grid.kernels:
        for stride in grid.strides:
            pva = grid.min_cycles(kernel, stride, "pva-sdram")
            cache = grid.min_cycles(kernel, stride, "cacheline-serial")
            gather = grid.min_cycles(kernel, stride, "gathering-serial")
            if cache / pva > best_cache:
                best_cache = cache / pva
                best_cache_at = (kernel, stride)
            if gather / pva > best_gather:
                best_gather = gather / pva
                best_gather_at = (kernel, stride)
            if stride == 1:
                ratio = cache / pva
                unit_lo = ratio if unit_lo is None else min(unit_lo, ratio)
                unit_hi = ratio if unit_hi is None else max(unit_hi, ratio)
            for alignment in grid.alignments:
                point = grid.point(kernel, stride, alignment)
                if "pva-sram" in point:
                    gap = point["pva-sdram"] / point["pva-sram"] - 1
                    worst_gap = max(worst_gap, gap)
    return HeadlineRatios(
        max_speedup_vs_cacheline=best_cache,
        max_speedup_vs_cacheline_at=best_cache_at,
        max_speedup_vs_gathering=best_gather,
        max_speedup_vs_gathering_at=best_gather_at,
        unit_stride_band=(unit_lo or 0.0, unit_hi or 0.0),
        worst_sram_gap=worst_gap,
    )

"""Hardware-complexity accounting (Table 1 and section 4.3.1).

The paper synthesized its Verilog prototype to the IKOS Xilinx library and
reports gate counts (Table 1).  Gate-level synthesis is outside a Python
reproduction, so this module does two things instead:

* records the paper's Table 1 verbatim (:data:`PAPER_TABLE1`), and
* derives *architectural* storage/logic estimates from the same parameters
  our simulator uses — register-file bits, staging RAM bytes, vector-
  context state, and PLA product terms for both FirstHit designs — so the
  scaling claims of section 4.3.1 (quadratic full-K_i PLA vs linear K1
  PLA; staging RAM = outstanding transactions x line size) can be checked
  quantitatively.

The one directly comparable number: the paper's prototype reports 2 KB of
on-chip RAM per bank controller, which equals our derived staging storage
(8 transactions x 128-byte line for each of read and write staging
halves... 8 x 128 x 2 = 2048 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.pla import pla_product_terms
from repro.experiments.report import format_table
from repro.params import SystemParams

__all__ = [
    "PAPER_TABLE1",
    "ComplexityEstimate",
    "complexity_score",
    "complexity_table",
]

#: Table 1 of the paper: synthesis summary of the unoptimized prototype.
PAPER_TABLE1: Dict[str, object] = {
    "AND2": 1193,
    "D Flip-flop": 1039,
    "D Latch": 32,
    "INV": 1627,
    "MUX2": 183,
    "NAND2": 5488,
    "NOR2": 843,
    "OR2": 194,
    "XOR2": 500,
    "PULLDOWN": 13,
    "TRISTATE BUFFER": 1849,
    "On-chip RAM": "2K bytes",
}

#: Module latencies the paper derives from synthesis (used as cycle
#: counts by the simulator): FHP 8.3 ns, SCHED 9.3 ns, multiply-add
#: 29.5 ns -> 2 cycles at 100 MHz.
PAPER_MODULE_DELAYS_NS: Dict[str, float] = {
    "FHP": 8.3,
    "SCHED": 9.3,
    "multiply-add (FHC)": 29.5,
}


@dataclass(frozen=True)
class ComplexityEstimate:
    """Architectural storage/logic estimate for one bank controller."""

    register_file_bits: int
    vector_context_bits: int
    staging_ram_bytes: int
    k1_pla_terms: int
    full_ki_pla_terms: int
    flip_flop_estimate: int

    def rows(self) -> List[Tuple[str, object]]:
        return [
            ("register file bits", self.register_file_bits),
            ("vector context bits", self.vector_context_bits),
            ("staging RAM bytes", self.staging_ram_bytes),
            ("K1 PLA product terms", self.k1_pla_terms),
            ("full-Ki PLA product terms", self.full_ki_pla_terms),
            ("flip-flop estimate", self.flip_flop_estimate),
        ]


def estimate_bank_controller(params: SystemParams) -> ComplexityEstimate:
    """Derive per-bank-controller storage from the system parameters.

    Field widths follow the prototype's bus: 32-bit address, 32-bit
    stride, 3-bit transaction id, 6-bit element count/index fields
    (vectors of at most 32 elements), plus the ACC flag.
    """
    address_bits = 32
    stride_bits = 32
    txn_bits = 3
    index_bits = 6
    entry_bits = (
        address_bits  # firsthit address
        + stride_bits  # stride (for the shift-and-add step)
        + txn_bits
        + index_bits  # firsthit index
        + index_bits  # element count
        + 1  # read/write
        + 1  # ACC flag
    )
    rf_bits = params.request_fifo_depth * entry_bits
    vc_bits = params.num_vector_contexts * (
        address_bits + index_bits * 2 + txn_bits + 2
    )
    staging_bytes = params.max_transactions * params.line_bytes * 2
    k1_terms = pla_product_terms(params.num_banks, "k1")
    ki_terms = pla_product_terms(params.num_banks, "full_ki")
    # Flip-flops ~ register file + contexts + restimers/predictors; the
    # paper's 1039 DFFs for the whole prototype bound the same order.
    ff = rf_bits + vc_bits + params.sdram.internal_banks * 16
    return ComplexityEstimate(
        register_file_bits=rf_bits,
        vector_context_bits=vc_bits,
        staging_ram_bytes=staging_bytes,
        k1_pla_terms=k1_terms,
        full_ki_pla_terms=ki_terms,
        flip_flop_estimate=ff,
    )


def complexity_score(params: SystemParams) -> int:
    """Scalar hardware-cost figure for design-space ranking (the Pareto
    x-axis of ``python -m repro explore``).

    Sums, over every bank controller in the topology, the Table-1-style
    sequential cost (flip-flop estimate) plus the K1 PLA product terms
    (the dominant combinational block, section 4.3.1).  Staging RAM is
    excluded: it is a dense SRAM macro whose bytes are not comparable
    with random logic on one axis.
    """
    per_bank = estimate_bank_controller(params)
    return params.num_banks * (
        per_bank.flip_flop_estimate + per_bank.k1_pla_terms
    )


def complexity_table(params: SystemParams = None) -> str:
    """Render Table 1 (paper) next to the derived architectural estimate,
    plus the PLA scaling series of section 4.3.1."""
    params = params or SystemParams()
    estimate = estimate_bank_controller(params)
    paper_rows = [(k, v) for k, v in PAPER_TABLE1.items()]
    scaling_rows = []
    for banks in (4, 8, 16, 32, 64):
        scaling_rows.append(
            (
                banks,
                pla_product_terms(banks, "k1"),
                pla_product_terms(banks, "full_ki"),
            )
        )
    parts = [
        "Paper Table 1 (IKOS/Xilinx synthesis of the prototype):",
        format_table(("cell type", "count"), paper_rows),
        "",
        "Derived per-bank-controller architectural estimate:",
        format_table(("quantity", "value"), estimate.rows()),
        "",
        "FirstHit PLA scaling (section 4.3.1):",
        format_table(
            ("banks", "K1 PLA terms (linear)", "full-Ki PLA terms (quadratic)"),
            scaling_rows,
        ),
    ]
    return "\n".join(parts)

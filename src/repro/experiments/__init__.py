"""Experiment harness: regenerates every table and figure of the paper's
evaluation (chapter 6) plus the ablations called out in DESIGN.md."""

from repro.experiments.grid import (
    EVAL_STRIDES,
    FIGURE7_KERNELS,
    FIGURE8_KERNELS,
    GridResults,
    run_grid,
    run_point,
)
from repro.experiments.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.alignment import alignment_spread, alignment_study
from repro.experiments.headline import headline_ratios
from repro.experiments.complexity import complexity_table
from repro.experiments.ablations import (
    ablate_row_policy,
    ablate_vector_contexts,
    ablate_bypass_paths,
    ablate_bank_scaling,
)

__all__ = [
    "EVAL_STRIDES",
    "FIGURE7_KERNELS",
    "FIGURE8_KERNELS",
    "GridResults",
    "run_grid",
    "run_point",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "alignment_spread",
    "alignment_study",
    "headline_ratios",
    "complexity_table",
    "ablate_row_policy",
    "ablate_vector_contexts",
    "ablate_bypass_paths",
    "ablate_bank_scaling",
]

"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation runs a focused sweep and returns ``(rows, text)`` so the
benchmark harness can both check invariants and print the series:

* row-management policy (paper / close / open / 21174-history),
* number of vector contexts (depth of the reordering window),
* bypass paths on/off (single-request latency, section 5.2.3),
* bank scaling (performance and PLA cost versus M, section 4.3.1).

All sweeps submit their points through the experiment engine, so
``engine=ExperimentEngine(jobs=N, cache_dir=...)`` parallelizes and
caches any of them; the default is a private inline engine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.core.pla import pla_product_terms
from repro.engine import (
    CommandTraceSpec,
    ExperimentEngine,
    ExperimentPoint,
    KernelTraceSpec,
)
from repro.experiments.report import format_table
from repro.params import SystemParams
from repro.types import AccessType, Vector, VectorCommand

__all__ = [
    "ablate_row_policy",
    "ablate_vector_contexts",
    "ablate_bypass_paths",
    "ablate_bank_scaling",
    "ablate_subcommand_latency",
    "ablate_refresh",
]


def _engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    return engine if engine is not None else ExperimentEngine()


def _kernel_point(
    params: SystemParams, kernel: str, stride: int, elements: int
) -> ExperimentPoint:
    return ExperimentPoint(
        system="pva-sdram",
        trace=KernelTraceSpec(kernel=kernel, stride=stride, elements=elements),
        params=params,
    )


def _single_read_point(
    params: SystemParams, stride: int, label: str
) -> ExperimentPoint:
    """One isolated vector read into an idle PVA unit."""
    command = VectorCommand(
        vector=Vector(base=3, stride=stride, length=params.cache_line_words),
        access=AccessType.READ,
    )
    return ExperimentPoint(
        system="pva-sdram",
        trace=CommandTraceSpec(commands=(command,), label=label),
        params=params,
    )


def ablate_row_policy(
    kernels: Sequence[str] = ("copy", "scale", "vaxpy"),
    strides: Sequence[int] = (1, 16, 19),
    elements: int = 512,
    params: Optional[SystemParams] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Tuple[List[Tuple], str]:
    """Compare the four row-management policies."""
    base = params or SystemParams()
    policies = ("paper", "close", "open", "history")
    cases = [(kernel, stride) for kernel in kernels for stride in strides]
    points = [
        _kernel_point(
            replace(base, row_policy=policy), kernel, stride, elements
        )
        for kernel, stride in cases
        for policy in policies
    ]
    cycles = iter(_engine(engine).run(points))
    rows: List[Tuple] = [
        (kernel, stride) + tuple(next(cycles) for _ in policies)
        for kernel, stride in cases
    ]
    headers = ("kernel", "stride") + policies
    return rows, format_table(headers, rows)


def ablate_vector_contexts(
    kernel: str = "vaxpy",
    strides: Sequence[int] = (1, 16, 19),
    context_counts: Sequence[int] = (1, 2, 4, 8),
    elements: int = 512,
    params: Optional[SystemParams] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Tuple[List[Tuple], str]:
    """Sweep the vector-context window depth."""
    base = params or SystemParams()
    points = [
        _kernel_point(
            replace(base, num_vector_contexts=n), kernel, stride, elements
        )
        for stride in strides
        for n in context_counts
    ]
    cycles = iter(_engine(engine).run(points))
    rows: List[Tuple] = [
        (kernel, stride) + tuple(next(cycles) for _ in context_counts)
        for stride in strides
    ]
    headers = ("kernel", "stride") + tuple(
        f"{n} VC" for n in context_counts
    )
    return rows, format_table(headers, rows)


def ablate_bypass_paths(
    strides: Sequence[int] = (1, 7, 19),
    params: Optional[SystemParams] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Tuple[List[Tuple], str]:
    """Latency of a single vector read into an idle PVA unit, with and
    without the section-5.2.3 bypass paths.

    This is where the bypasses matter: with pipelined traffic their
    latency is hidden, so the ablation uses one isolated command (power-
    of-two and non-power-of-two strides exercise the FHP and FHC paths).
    """
    base = params or SystemParams()
    points = [
        _single_read_point(
            replace(base, bypass_paths=enabled),
            stride,
            f"bypass-{'on' if enabled else 'off'}/s{stride}",
        )
        for stride in strides
        for enabled in (True, False)
    ]
    cycles = iter(_engine(engine).run(points))
    rows: List[Tuple] = []
    for stride in strides:
        with_bypass = next(cycles)
        without = next(cycles)
        rows.append((stride, with_bypass, without, without - with_bypass))
    headers = ("stride", "with bypass", "without bypass", "saved cycles")
    return rows, format_table(headers, rows)


def ablate_subcommand_latency(
    kernel: str = "copy",
    strides: Sequence[int] = (8, 19),
    latencies: Sequence[int] = (2, 5, 13),
    elements: int = 512,
    params: Optional[SystemParams] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Tuple[List[Tuple], str]:
    """Subcommand-generation latency: PVA vs CVMS-class hardware.

    Section 3.1: the Command Vector Memory System needs "15 memory cycles
    to generate the subcommands" for non-power-of-two strides where the
    PVA's multiply-add needs at most five (two for powers of two).  This
    sweep varies the FirstHit-Calculate latency to show how much of that
    advantage survives pipelining: with requests in flight the FHC hides
    entirely; it is bare single-request latency that pays.
    """
    base = params or SystemParams()
    points: List[ExperimentPoint] = []
    for stride in strides:
        for latency in latencies:
            p = replace(base, fhc_latency=latency)
            points.append(_kernel_point(p, kernel, stride, elements))
            points.append(
                _single_read_point(p, stride, f"fhc{latency}/s{stride}")
            )
    cycles = iter(_engine(engine).run(points))
    rows: List[Tuple] = []
    for stride in strides:
        pipelined = {}
        single = {}
        for latency in latencies:
            pipelined[latency] = next(cycles)
            single[latency] = next(cycles)
        rows.append(
            (stride, "pipelined")
            + tuple(pipelined[latency] for latency in latencies)
        )
        rows.append(
            (stride, "single request")
            + tuple(single[latency] for latency in latencies)
        )
    headers = ("stride", "load") + tuple(
        f"fhc={latency}" for latency in latencies
    )
    return rows, format_table(headers, rows)


def ablate_refresh(
    kernel: str = "copy",
    stride: int = 1,
    intervals: Sequence[int] = (0, 780, 200, 100),
    elements: int = 1024,
    params: Optional[SystemParams] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Tuple[List[Tuple], str]:
    """Auto-refresh tax versus refresh period (0 = disabled, the paper's
    implicit assumption; ~780 cycles is realistic for a 100 MHz part)."""
    base = params or SystemParams()
    points = [
        _kernel_point(
            replace(base, sdram=replace(base.sdram, refresh_interval=interval)),
            kernel,
            stride,
            elements,
        )
        for interval in intervals
    ]
    cycles = _engine(engine).run(points)
    baseline = cycles[0]
    rows: List[Tuple] = [
        (
            interval if interval else "off",
            count,
            f"{(count / baseline - 1) * 100:+.1f}%",
        )
        for interval, count in zip(intervals, cycles)
    ]
    headers = ("refresh interval", "cycles", "overhead")
    return rows, format_table(headers, rows)


def ablate_bank_scaling(
    kernel: str = "scale",
    stride: int = 8,
    banks: Sequence[int] = (4, 8, 16, 32),
    elements: int = 512,
    params: Optional[SystemParams] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Tuple[List[Tuple], str]:
    """Performance and PLA cost versus the number of banks.

    The default point (stride 8) is chosen to expose the parallelism
    cliff: with 4 or 8 banks a stride-8 vector lands entirely in one bank
    (``stride mod M == 0`` or ``s == m``), with 16 banks two banks share
    the work, with 32 banks four do.  Strides with full parallelism are
    bus-bound at every M and would show a flat line.
    """
    base = params or SystemParams()
    points = [
        _kernel_point(replace(base, num_banks=m), kernel, stride, elements)
        for m in banks
    ]
    cycles = _engine(engine).run(points)
    rows: List[Tuple] = [
        (
            m,
            count,
            pla_product_terms(m, "k1"),
            pla_product_terms(m, "full_ki"),
        )
        for m, count in zip(banks, cycles)
    ]
    headers = ("banks", "cycles", "K1 PLA terms", "full-Ki PLA terms")
    return rows, format_table(headers, rows)

"""The evaluation grid of section 6.2.

240 data points per memory system: eight access patterns (six kernels plus
the unrolled copy2/scale2), six strides {1, 2, 4, 8, 16, 19}, and five
relative vector alignments.  ``run_grid`` executes any sub-grid and returns
a :class:`GridResults` that the figure generators slice.

Execution goes through the parallel experiment engine
(:class:`repro.engine.ExperimentEngine`): pass ``jobs=N`` to fan the
points over a worker pool and ``cache_dir=...`` to replay repeated runs
from the content-addressed result cache.  The default (``jobs=1``, no
cache) runs inline and is byte-identical to the historical serial loop.

The serial baselines are alignment-independent (their cost model sees only
addresses-per-command), so they are evaluated once per (kernel, stride)
and shared across alignments — expressed by submitting those points with
the grid's first alignment and letting the engine coalesce duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api import available_systems, system_entry
from repro.engine import (
    EngineHooks,
    ExperimentEngine,
    ExperimentPoint,
    KernelTraceSpec,
)
from repro.errors import ConfigurationError
from repro.kernels import ALIGNMENTS, Alignment, alignment_by_name
from repro.params import SystemParams

__all__ = [
    "EVAL_STRIDES",
    "EVAL_KERNELS",
    "FIGURE7_KERNELS",
    "FIGURE8_KERNELS",
    "GridResults",
    "run_point",
    "run_grid",
]

#: The six strides of the evaluation.
EVAL_STRIDES: Tuple[int, ...] = (1, 2, 4, 8, 16, 19)

#: The eight access patterns.
EVAL_KERNELS: Tuple[str, ...] = (
    "copy",
    "copy2",
    "saxpy",
    "scale",
    "scale2",
    "swap",
    "tridiag",
    "vaxpy",
)

#: Figure 7 covers the first four patterns, figure 8 the rest.
FIGURE7_KERNELS: Tuple[str, ...] = ("copy", "copy2", "saxpy", "scale")
FIGURE8_KERNELS: Tuple[str, ...] = ("scale2", "swap", "tridiag", "vaxpy")


def __getattr__(name: str):
    if name == "SYSTEMS":
        from repro.errors import ReproError

        raise ReproError(
            "repro.experiments.grid.SYSTEMS has been removed; use the "
            "repro.api registry (available_systems / build_system / "
            "register_system) instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class GridResults:
    """Cycle counts for every executed (kernel, stride, alignment, system).

    ``cycles[(kernel, stride, alignment_name)][system] = cycles``.
    """

    params: SystemParams
    elements: int
    kernels: Tuple[str, ...]
    strides: Tuple[int, ...]
    alignments: Tuple[str, ...]
    systems: Tuple[str, ...]
    cycles: Dict[Tuple[str, int, str], Dict[str, int]] = field(
        default_factory=dict
    )

    def point(self, kernel: str, stride: int, alignment: str) -> Dict[str, int]:
        return self.cycles[(kernel, stride, alignment)]

    def over_alignments(
        self, kernel: str, stride: int, system: str
    ) -> List[int]:
        """Cycle counts of one system across all alignments, in the
        alignment order of the grid."""
        return [
            self.cycles[(kernel, stride, name)][system]
            for name in self.alignments
        ]

    def min_cycles(self, kernel: str, stride: int, system: str) -> int:
        return min(self.over_alignments(kernel, stride, system))

    def max_cycles(self, kernel: str, stride: int, system: str) -> int:
        return max(self.over_alignments(kernel, stride, system))

    def normalized(
        self, kernel: str, stride: int, system: str, statistic: str = "min"
    ) -> float:
        """Execution time normalized to the minimum PVA-SDRAM time for the
        same access pattern — the paper's bar annotations (1.0 = 100%)."""
        base = self.min_cycles(kernel, stride, "pva-sdram")
        value = (
            self.min_cycles(kernel, stride, system)
            if statistic == "min"
            else self.max_cycles(kernel, stride, system)
        )
        return value / base


def _alignment_by_name(name: str) -> Alignment:
    return alignment_by_name(name)


def run_point(
    kernel: str,
    stride: int,
    alignment: Alignment,
    params: Optional[SystemParams] = None,
    elements: int = 1024,
    systems: Optional[Sequence[str]] = None,
    *,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, int]:
    """Execute one grid point on the requested systems; return cycles."""
    params = params or SystemParams()
    systems = tuple(systems or available_systems())
    engine = engine if engine is not None else ExperimentEngine()
    points = [
        ExperimentPoint(
            system=name,
            trace=KernelTraceSpec(
                kernel=kernel,
                stride=stride,
                alignment=alignment.name,
                elements=elements,
            ),
            params=params,
        )
        for name in systems
    ]
    return dict(zip(systems, engine.run(points)))


def run_grid(
    kernels: Iterable[str] = EVAL_KERNELS,
    strides: Iterable[int] = EVAL_STRIDES,
    alignments: Optional[Iterable[Alignment]] = None,
    params: Optional[SystemParams] = None,
    elements: int = 1024,
    systems: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    cache_dir=None,
    hooks: Optional[EngineHooks] = None,
    engine: Optional[ExperimentEngine] = None,
) -> GridResults:
    """Execute a (sub-)grid of the evaluation through the engine.

    Fresh memory-system instances are built per point, so points are
    independent and safely parallelizable; the alignment-free serial
    baselines are submitted under the grid's first alignment, so the
    engine computes them once per (kernel, stride) and shares the result.

    ``jobs``, ``cache_dir`` and ``hooks`` configure a private engine;
    pass ``engine=`` instead to share one (and its cache and metrics)
    across several grids.
    """
    params = params or SystemParams()
    kernels = tuple(kernels)
    strides = tuple(strides)
    alignment_objs = tuple(alignments if alignments is not None else ALIGNMENTS)
    system_names = tuple(systems or available_systems())
    if not alignment_objs:
        raise ConfigurationError("run_grid needs at least one alignment")
    engine = (
        engine
        if engine is not None
        else ExperimentEngine(jobs=jobs, cache_dir=cache_dir, hooks=hooks)
    )
    alignment_free = {
        name for name in system_names if system_entry(name).alignment_free
    }
    canonical_alignment = alignment_objs[0].name

    points: List[ExperimentPoint] = []
    slots: List[Tuple[str, int, str, str]] = []
    for kernel in kernels:
        for stride in strides:
            for alignment in alignment_objs:
                for name in system_names:
                    submitted = (
                        canonical_alignment
                        if name in alignment_free
                        else alignment.name
                    )
                    points.append(
                        ExperimentPoint(
                            system=name,
                            trace=KernelTraceSpec(
                                kernel=kernel,
                                stride=stride,
                                alignment=submitted,
                                elements=elements,
                            ),
                            params=params,
                        )
                    )
                    slots.append((kernel, stride, alignment.name, name))

    cycles = engine.run(points)
    results = GridResults(
        params=params,
        elements=elements,
        kernels=kernels,
        strides=strides,
        alignments=tuple(a.name for a in alignment_objs),
        systems=system_names,
    )
    for (kernel, stride, alignment_name, name), count in zip(slots, cycles):
        results.cycles.setdefault((kernel, stride, alignment_name), {})[
            name
        ] = count
    return results

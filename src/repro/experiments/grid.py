"""The evaluation grid of section 6.2.

240 data points per memory system: eight access patterns (six kernels plus
the unrolled copy2/scale2), six strides {1, 2, 4, 8, 16, 19}, and five
relative vector alignments.  ``run_grid`` executes any sub-grid and returns
a :class:`GridResults` that the figure generators slice.

The serial baselines are alignment-independent (their cost model sees only
addresses-per-command), so they are evaluated once per (kernel, stride)
and reused across alignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines import (
    CacheLineSerialSDRAM,
    GatheringSerialSDRAM,
    make_pva_sram,
)
from repro.errors import ConfigurationError
from repro.kernels import ALIGNMENTS, Alignment, build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem

__all__ = [
    "EVAL_STRIDES",
    "EVAL_KERNELS",
    "FIGURE7_KERNELS",
    "FIGURE8_KERNELS",
    "SYSTEMS",
    "GridResults",
    "run_point",
    "run_grid",
]

#: The six strides of the evaluation.
EVAL_STRIDES: Tuple[int, ...] = (1, 2, 4, 8, 16, 19)

#: The eight access patterns.
EVAL_KERNELS: Tuple[str, ...] = (
    "copy",
    "copy2",
    "saxpy",
    "scale",
    "scale2",
    "swap",
    "tridiag",
    "vaxpy",
)

#: Figure 7 covers the first four patterns, figure 8 the rest.
FIGURE7_KERNELS: Tuple[str, ...] = ("copy", "copy2", "saxpy", "scale")
FIGURE8_KERNELS: Tuple[str, ...] = ("scale2", "swap", "tridiag", "vaxpy")

#: Memory-system factories, keyed by the names used throughout results.
SYSTEMS: Dict[str, Callable[[SystemParams], object]] = {
    "pva-sdram": lambda p: PVAMemorySystem(p),
    "pva-sram": lambda p: make_pva_sram(p),
    "cacheline-serial": lambda p: CacheLineSerialSDRAM(p),
    "gathering-serial": lambda p: GatheringSerialSDRAM(p),
}

#: Systems whose cycle counts do not depend on relative alignment.
_ALIGNMENT_FREE = frozenset({"cacheline-serial", "gathering-serial"})


@dataclass
class GridResults:
    """Cycle counts for every executed (kernel, stride, alignment, system).

    ``cycles[(kernel, stride, alignment_name)][system] = cycles``.
    """

    params: SystemParams
    elements: int
    kernels: Tuple[str, ...]
    strides: Tuple[int, ...]
    alignments: Tuple[str, ...]
    systems: Tuple[str, ...]
    cycles: Dict[Tuple[str, int, str], Dict[str, int]] = field(
        default_factory=dict
    )

    def point(self, kernel: str, stride: int, alignment: str) -> Dict[str, int]:
        return self.cycles[(kernel, stride, alignment)]

    def over_alignments(
        self, kernel: str, stride: int, system: str
    ) -> List[int]:
        """Cycle counts of one system across all alignments, in the
        alignment order of the grid."""
        return [
            self.cycles[(kernel, stride, name)][system]
            for name in self.alignments
        ]

    def min_cycles(self, kernel: str, stride: int, system: str) -> int:
        return min(self.over_alignments(kernel, stride, system))

    def max_cycles(self, kernel: str, stride: int, system: str) -> int:
        return max(self.over_alignments(kernel, stride, system))

    def normalized(
        self, kernel: str, stride: int, system: str, statistic: str = "min"
    ) -> float:
        """Execution time normalized to the minimum PVA-SDRAM time for the
        same access pattern — the paper's bar annotations (1.0 = 100%)."""
        base = self.min_cycles(kernel, stride, "pva-sdram")
        value = (
            self.min_cycles(kernel, stride, system)
            if statistic == "min"
            else self.max_cycles(kernel, stride, system)
        )
        return value / base


def _alignment_by_name(name: str) -> Alignment:
    for alignment in ALIGNMENTS:
        if alignment.name == name:
            return alignment
    raise ConfigurationError(
        f"unknown alignment {name!r}; available: "
        f"{[a.name for a in ALIGNMENTS]}"
    )


def run_point(
    kernel: str,
    stride: int,
    alignment: Alignment,
    params: Optional[SystemParams] = None,
    elements: int = 1024,
    systems: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Execute one grid point on the requested systems; return cycles."""
    params = params or SystemParams()
    systems = tuple(systems or SYSTEMS)
    trace = build_trace(
        kernel_by_name(kernel),
        stride=stride,
        params=params,
        elements=elements,
        alignment=alignment,
    )
    out: Dict[str, int] = {}
    for name in systems:
        system = SYSTEMS[name](params)
        out[name] = system.run(trace).cycles
    return out


def run_grid(
    kernels: Iterable[str] = EVAL_KERNELS,
    strides: Iterable[int] = EVAL_STRIDES,
    alignments: Optional[Iterable[Alignment]] = None,
    params: Optional[SystemParams] = None,
    elements: int = 1024,
    systems: Optional[Sequence[str]] = None,
) -> GridResults:
    """Execute a (sub-)grid of the evaluation.

    Fresh memory-system instances are built per point, so points are
    independent; the alignment-free serial baselines are computed once per
    (kernel, stride).
    """
    params = params or SystemParams()
    kernels = tuple(kernels)
    strides = tuple(strides)
    alignment_objs = tuple(alignments if alignments is not None else ALIGNMENTS)
    system_names = tuple(systems or SYSTEMS)
    results = GridResults(
        params=params,
        elements=elements,
        kernels=kernels,
        strides=strides,
        alignments=tuple(a.name for a in alignment_objs),
        systems=system_names,
    )
    for kernel in kernels:
        for stride in strides:
            serial_cache: Dict[str, int] = {}
            for alignment in alignment_objs:
                point: Dict[str, int] = {}
                trace = None
                for name in system_names:
                    if name in _ALIGNMENT_FREE and name in serial_cache:
                        point[name] = serial_cache[name]
                        continue
                    if trace is None:
                        trace = build_trace(
                            kernel_by_name(kernel),
                            stride=stride,
                            params=params,
                            elements=elements,
                            alignment=alignment,
                        )
                    cycles = SYSTEMS[name](params).run(trace).cycles
                    point[name] = cycles
                    if name in _ALIGNMENT_FREE:
                        serial_cache[name] = cycles
                results.cycles[(kernel, stride, alignment.name)] = point
    return results

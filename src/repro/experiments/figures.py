"""Figure generators for the paper's evaluation plots.

Each function slices a :class:`~repro.experiments.grid.GridResults` into
the series a figure plots and returns it as structured rows plus a
printable table.  Conventions follow the paper:

* **Figures 7/8** — per-kernel panels of cycles versus stride, four
  memory systems, min/max over the five alignments for the PVA systems.
* **Figures 9/10** — per-stride panels across all kernels, annotated with
  execution time normalized to the minimum PVA-SDRAM time per pattern.
* **Figure 11** — the vaxpy detail: (a) PVA-SDRAM cycles per
  stride x alignment normalized to the leftmost (stride 1, first
  alignment) bar; (b) PVA-SRAM normalized to the corresponding SDRAM bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine import ExperimentEngine
from repro.errors import ConfigurationError
from repro.experiments.grid import (
    FIGURE7_KERNELS,
    FIGURE8_KERNELS,
    GridResults,
    run_grid,
)
from repro.experiments.report import format_percent, format_table

__all__ = [
    "FigureSeries",
    "FIGURE_GRIDS",
    "run_figure",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
]


@dataclass
class FigureSeries:
    """One reproduced figure: labelled rows plus a rendered table."""

    name: str
    headers: Tuple[str, ...]
    rows: List[Tuple]
    text: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.name} ==\n{self.text}"


def _stride_panel(
    grid: GridResults, kernels: Tuple[str, ...], name: str
) -> FigureSeries:
    headers = (
        "kernel",
        "stride",
        "pva-sdram(min)",
        "pva-sdram(max)",
        "pva-sram(min)",
        "pva-sram(max)",
        "cacheline-serial",
        "gathering-serial",
        "cacheline/pva",
        "gathering/pva",
    )
    rows: List[Tuple] = []
    for kernel in kernels:
        if kernel not in grid.kernels:
            continue
        for stride in grid.strides:
            pva_min = grid.min_cycles(kernel, stride, "pva-sdram")
            rows.append(
                (
                    kernel,
                    stride,
                    pva_min,
                    grid.max_cycles(kernel, stride, "pva-sdram"),
                    grid.min_cycles(kernel, stride, "pva-sram"),
                    grid.max_cycles(kernel, stride, "pva-sram"),
                    grid.min_cycles(kernel, stride, "cacheline-serial"),
                    grid.min_cycles(kernel, stride, "gathering-serial"),
                    format_percent(
                        grid.min_cycles(kernel, stride, "cacheline-serial")
                        / pva_min
                    ),
                    format_percent(
                        grid.min_cycles(kernel, stride, "gathering-serial")
                        / pva_min
                    ),
                )
            )
    return FigureSeries(
        name=name,
        headers=headers,
        rows=rows,
        text=format_table(headers, rows),
    )


def figure7(grid: GridResults) -> FigureSeries:
    """Comparative performance with varying stride — copy, copy2, saxpy,
    scale (figure 7)."""
    return _stride_panel(grid, FIGURE7_KERNELS, "figure 7")


def figure8(grid: GridResults) -> FigureSeries:
    """Comparative performance with varying stride — scale2, swap,
    tridiag, vaxpy (figure 8)."""
    return _stride_panel(grid, FIGURE8_KERNELS, "figure 8")


def _fixed_stride_panel(
    grid: GridResults, strides: Tuple[int, ...], name: str
) -> FigureSeries:
    headers = (
        "stride",
        "kernel",
        "pva-sdram(min)",
        "pva-sram(min)",
        "cacheline-serial",
        "gathering-serial",
        "cacheline norm",
        "gathering norm",
        "pva-sram norm",
    )
    rows: List[Tuple] = []
    for stride in strides:
        if stride not in grid.strides:
            continue
        for kernel in grid.kernels:
            base = grid.min_cycles(kernel, stride, "pva-sdram")
            rows.append(
                (
                    stride,
                    kernel,
                    base,
                    grid.min_cycles(kernel, stride, "pva-sram"),
                    grid.min_cycles(kernel, stride, "cacheline-serial"),
                    grid.min_cycles(kernel, stride, "gathering-serial"),
                    format_percent(
                        grid.min_cycles(kernel, stride, "cacheline-serial")
                        / base
                    ),
                    format_percent(
                        grid.min_cycles(kernel, stride, "gathering-serial")
                        / base
                    ),
                    format_percent(
                        grid.min_cycles(kernel, stride, "pva-sram") / base
                    ),
                )
            )
    return FigureSeries(
        name=name,
        headers=headers,
        rows=rows,
        text=format_table(headers, rows),
    )


def figure9(grid: GridResults) -> FigureSeries:
    """All kernels at fixed strides 1 and 4 (figure 9)."""
    return _fixed_stride_panel(grid, (1, 4), "figure 9")


def figure10(grid: GridResults) -> FigureSeries:
    """All kernels at fixed strides 8, 16 and 19 (figure 10)."""
    return _fixed_stride_panel(grid, (8, 16, 19), "figure 10")


def figure11(grid: GridResults, kernel: str = "vaxpy") -> FigureSeries:
    """The vaxpy stride x alignment detail (figure 11).

    Rows carry the PVA-SDRAM cycles normalized to the leftmost bar
    (first stride, first alignment) and PVA-SRAM normalized to the
    corresponding SDRAM bar — the paper's key "SDRAM within ~15 % of
    SRAM" evidence.
    """
    headers = (
        "stride",
        "alignment",
        "pva-sdram",
        "pva-sram",
        "sdram vs leftmost",
        "sram/sdram",
    )
    first = grid.point(kernel, grid.strides[0], grid.alignments[0])
    leftmost = first["pva-sdram"]
    rows: List[Tuple] = []
    for stride in grid.strides:
        for alignment in grid.alignments:
            point = grid.point(kernel, stride, alignment)
            sdram = point["pva-sdram"]
            sram = point["pva-sram"]
            rows.append(
                (
                    stride,
                    alignment,
                    sdram,
                    sram,
                    format_percent(sdram / leftmost),
                    format_percent(sram / sdram),
                )
            )
    return FigureSeries(
        name=f"figure 11 ({kernel})",
        headers=headers,
        rows=rows,
        text=format_table(headers, rows),
    )


#: The (sub-)grid each figure needs: ``{number: (generator, grid kwargs)}``.
FIGURE_GRIDS = {
    "7": (figure7, dict(kernels=FIGURE7_KERNELS)),
    "8": (figure8, dict(kernels=FIGURE8_KERNELS)),
    "9": (figure9, dict(strides=(1, 4))),
    "10": (figure10, dict(strides=(8, 16, 19))),
    "11": (
        figure11,
        dict(kernels=("vaxpy",), systems=("pva-sdram", "pva-sram")),
    ),
}


def run_figure(
    number: str,
    elements: int = 1024,
    engine: Optional[ExperimentEngine] = None,
) -> FigureSeries:
    """Run the grid one of the paper's figures needs and generate it.

    The grid is submitted through ``engine`` (parallel execution and
    result caching); a private inline engine is used by default.
    """
    try:
        generator, grid_kwargs = FIGURE_GRIDS[str(number)]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {number!r}; available: {sorted(FIGURE_GRIDS)}"
        ) from None
    grid = run_grid(elements=elements, engine=engine, **grid_kwargs)
    return generator(grid)

"""One-shot regeneration of every experiment artifact.

``generate_all`` runs the full evaluation — figures 7-11, tables 1-2,
the headline ratios, every ablation, and the extension experiments — and
writes each series to ``<out_dir>/<name>.txt``.  This is the library-level
equivalent of ``pytest benchmarks/ --benchmark-only`` without the
benchmarking harness, exposed on the CLI as ``python -m repro all``.

Every experiment submits its points through **one shared
:class:`~repro.engine.ExperimentEngine`**: ``jobs=N`` fans the whole
evaluation over a worker pool, ``cache_dir=...`` makes re-runs replay
from the result cache, and the engine's aggregate metrics (points/sec,
cache hit rate) are reported through ``progress`` at the end.

``elements`` scales the vector length (1024 = the paper's full size;
smaller values give quick sanity passes).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.engine import ExperimentEngine
from repro.experiments.ablations import (
    ablate_bank_scaling,
    ablate_bypass_paths,
    ablate_refresh,
    ablate_row_policy,
    ablate_subcommand_latency,
    ablate_vector_contexts,
)
from repro.experiments.alignment import alignment_study
from repro.experiments.complexity import complexity_table
from repro.experiments.figures import run_figure
from repro.experiments.headline import measure_headline
from repro.experiments.report import format_table
from repro.params import SystemParams

__all__ = ["generate_all"]


def _headline_text(elements: int, engine: ExperimentEngine) -> str:
    summary = measure_headline(elements=elements, engine=engine).summary()
    rows = [(key, value) for key, value in summary.items()]
    return format_table(("quantity", "measured"), rows)


def generate_all(
    out_dir: Union[str, Path] = "results",
    elements: int = 1024,
    progress: Callable[[str], None] = lambda message: None,
    jobs: int = 1,
    cache_dir=None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Path]:
    """Regenerate every artifact; return ``{name: path}``.

    ``progress`` receives a line per artifact (the CLI prints them);
    engine throughput/caching metrics stay readable on the engine you
    pass in (``engine.metrics``).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    engine = (
        engine
        if engine is not None
        else ExperimentEngine(jobs=jobs, cache_dir=cache_dir)
    )

    def emit(name: str, text: str) -> None:
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        written[name] = path
        progress(f"wrote {path}")

    for number in ("7", "8", "9", "10", "11"):
        emit(f"figure{number}", run_figure(number, elements, engine).text)

    emit("table1", complexity_table(SystemParams()))
    emit("headline", _headline_text(elements, engine))

    small = min(elements, 512)
    ablations: List[Tuple[str, Callable[[], Tuple[list, str]]]] = [
        (
            "ablation_row_policy",
            lambda: ablate_row_policy(elements=small, engine=engine),
        ),
        (
            "ablation_vector_contexts",
            lambda: ablate_vector_contexts(elements=small, engine=engine),
        ),
        ("ablation_bypass", lambda: ablate_bypass_paths(engine=engine)),
        (
            "ablation_bank_scaling",
            lambda: ablate_bank_scaling(elements=small, engine=engine),
        ),
        (
            "ablation_subcommand_latency",
            lambda: ablate_subcommand_latency(elements=small, engine=engine),
        ),
        (
            "ablation_refresh",
            lambda: ablate_refresh(elements=elements, engine=engine),
        ),
    ]
    for name, runner in ablations:
        _, text = runner()
        emit(name, text)

    _, alignment_text = alignment_study(elements=small, engine=engine)
    emit("alignment_study", alignment_text)
    return written

"""One-shot regeneration of every experiment artifact.

``generate_all`` runs the full evaluation — figures 7-11, tables 1-2,
the headline ratios, every ablation, and the extension experiments — and
writes each series to ``<out_dir>/<name>.txt``.  This is the library-level
equivalent of ``pytest benchmarks/ --benchmark-only`` without the
benchmarking harness, exposed on the CLI as ``python -m repro all``.

``elements`` scales the vector length (1024 = the paper's full size;
smaller values give quick sanity passes).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Tuple, Union

from repro.experiments.ablations import (
    ablate_bank_scaling,
    ablate_bypass_paths,
    ablate_refresh,
    ablate_row_policy,
    ablate_subcommand_latency,
    ablate_vector_contexts,
)
from repro.experiments.alignment import alignment_study
from repro.experiments.complexity import complexity_table
from repro.experiments.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.grid import (
    FIGURE7_KERNELS,
    FIGURE8_KERNELS,
    run_grid,
)
from repro.experiments.headline import headline_ratios
from repro.experiments.report import format_table
from repro.params import SystemParams

__all__ = ["generate_all"]


def _headline_text(elements: int) -> str:
    grid = run_grid(kernels=("copy", "scale", "swap"), elements=elements)
    summary = headline_ratios(grid).summary()
    rows = [(key, value) for key, value in summary.items()]
    return format_table(("quantity", "measured"), rows)


def generate_all(
    out_dir: Union[str, Path] = "results",
    elements: int = 1024,
    progress: Callable[[str], None] = lambda message: None,
) -> Dict[str, Path]:
    """Regenerate every artifact; return ``{name: path}``.

    ``progress`` receives a line per artifact (the CLI prints them).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    def emit(name: str, text: str) -> None:
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        written[name] = path
        progress(f"wrote {path}")

    grid7 = run_grid(kernels=FIGURE7_KERNELS, elements=elements)
    emit("figure7", figure7(grid7).text)
    grid8 = run_grid(kernels=FIGURE8_KERNELS, elements=elements)
    emit("figure8", figure8(grid8).text)
    grid_fixed_low = run_grid(strides=(1, 4), elements=elements)
    emit("figure9", figure9(grid_fixed_low).text)
    grid_fixed_high = run_grid(strides=(8, 16, 19), elements=elements)
    emit("figure10", figure10(grid_fixed_high).text)
    grid_vaxpy = run_grid(
        kernels=("vaxpy",),
        systems=("pva-sdram", "pva-sram"),
        elements=elements,
    )
    emit("figure11", figure11(grid_vaxpy, kernel="vaxpy").text)

    emit("table1", complexity_table(SystemParams()))
    emit("headline", _headline_text(elements))

    ablations: List[Tuple[str, Callable[[], Tuple[list, str]]]] = [
        ("ablation_row_policy", lambda: ablate_row_policy(elements=min(elements, 512))),
        ("ablation_vector_contexts", lambda: ablate_vector_contexts(elements=min(elements, 512))),
        ("ablation_bypass", ablate_bypass_paths),
        ("ablation_bank_scaling", lambda: ablate_bank_scaling(elements=min(elements, 512))),
        ("ablation_subcommand_latency", lambda: ablate_subcommand_latency(elements=min(elements, 512))),
        ("ablation_refresh", lambda: ablate_refresh(elements=elements)),
    ]
    for name, runner in ablations:
        _, text = runner()
        emit(name, text)

    _, alignment_text = alignment_study(elements=min(elements, 512))
    emit("alignment_study", alignment_text)
    return written

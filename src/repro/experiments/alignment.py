"""Alignment-sensitivity study.

Figure 11 shows vaxpy only; this experiment generalizes it: for every
(kernel, stride) of the evaluation, the spread (max/min over the five
relative alignments), which alignment wins and which loses — making the
paper's claim quantitative across the whole grid: sensitivity is
concentrated at the strides whose parallelism is one or two banks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.decode import decompose_stride
from repro.engine import ExperimentEngine
from repro.experiments.grid import GridResults, run_grid
from repro.experiments.report import format_table

__all__ = ["alignment_spread", "alignment_study"]


def alignment_spread(
    grid: GridResults, kernel: str, stride: int, system: str = "pva-sdram"
) -> Tuple[float, str, str]:
    """``(max/min ratio, best alignment, worst alignment)`` for a point."""
    cycles = {
        name: grid.cycles[(kernel, stride, name)][system]
        for name in grid.alignments
    }
    best = min(cycles, key=cycles.get)
    worst = max(cycles, key=cycles.get)
    return cycles[worst] / cycles[best], best, worst


def alignment_study(
    kernels: Optional[Sequence[str]] = None,
    strides: Optional[Sequence[int]] = None,
    elements: int = 512,
    grid: Optional[GridResults] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Tuple[List[Tuple], str]:
    """Run (or reuse) a grid and tabulate alignment sensitivity.

    The sweep submits its points through ``engine`` (parallelism and
    result caching); a private inline engine is used by default.
    """
    if grid is None:
        grid = run_grid(
            kernels=kernels or ("copy", "scale", "swap", "tridiag", "vaxpy"),
            strides=strides or (1, 2, 4, 8, 16, 19),
            elements=elements,
            systems=("pva-sdram",),
            engine=engine,
        )
    rows: List[Tuple] = []
    for kernel in grid.kernels:
        for stride in grid.strides:
            spread, best, worst = alignment_spread(grid, kernel, stride)
            parallelism = decompose_stride(
                stride, grid.params.num_banks
            ).banks_hit
            rows.append(
                (
                    kernel,
                    stride,
                    parallelism,
                    f"{spread:.2f}x",
                    best,
                    worst,
                )
            )
    text = format_table(
        (
            "kernel",
            "stride",
            "banks hit",
            "max/min over alignments",
            "best alignment",
            "worst alignment",
        ),
        rows,
    )
    return rows, text

"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_percent"]


def format_percent(ratio: float) -> str:
    """Render a normalized execution time the way the paper annotates
    bars: ``1.0 -> \"100%\"``."""
    return f"{ratio * 100:.0f}%"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule; all values str()-ed."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append([str(cell) for cell in row])
    widths = [
        max(len(line[col]) for line in materialized)
        for col in range(len(headers))
    ]
    lines = []
    for i, line in enumerate(materialized):
        lines.append(
            "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(line))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

"""Workload generators beyond the paper's six kernels: matrix-walk
patterns (the applications the introduction motivates) and seeded random
command streams for stress testing."""

from repro.workloads.matrix import (
    MatrixLayout,
    column_walk,
    diagonal_walk,
    matrix_vector_by_diagonals,
    row_walk,
    transpose,
)
from repro.workloads.random_traces import RandomTraceConfig, random_trace

__all__ = [
    "MatrixLayout",
    "row_walk",
    "column_walk",
    "diagonal_walk",
    "transpose",
    "matrix_vector_by_diagonals",
    "RandomTraceConfig",
    "random_trace",
]

"""Seeded random command-stream generation.

Used by stress tests and robustness benchmarks: arbitrary mixes of reads
and writes over random bases/strides/lengths, optionally including
explicit scatter/gather commands.  Fully deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Union

from repro.errors import ConfigurationError
from repro.params import SystemParams
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

__all__ = ["RandomTraceConfig", "random_trace"]


@dataclass(frozen=True)
class RandomTraceConfig:
    """Distribution parameters for :func:`random_trace`."""

    commands: int = 32
    address_space_words: int = 1 << 16
    max_stride: int = 64
    write_fraction: float = 0.4
    #: Fraction of commands that are explicit (indirect-style) rather
    #: than base-stride.
    explicit_fraction: float = 0.0
    #: Emit full-line commands only (True) or random lengths (False).
    full_lines: bool = True

    def __post_init__(self) -> None:
        if self.commands <= 0:
            raise ConfigurationError("commands must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.explicit_fraction <= 1.0:
            raise ConfigurationError("explicit_fraction must be in [0, 1]")
        if self.max_stride < 1:
            raise ConfigurationError("max_stride must be >= 1")


def random_trace(
    seed: int,
    params: SystemParams = None,
    config: RandomTraceConfig = None,
) -> List[Union[VectorCommand, ExplicitCommand]]:
    """Generate a deterministic random command trace.

    Addresses are kept inside ``config.address_space_words`` so traces
    from the same config are directly comparable across systems.
    """
    params = params or SystemParams()
    config = config or RandomTraceConfig()
    rng = random.Random(seed)
    line = params.cache_line_words
    trace: List[Union[VectorCommand, ExplicitCommand]] = []
    for index in range(config.commands):
        length = (
            line if config.full_lines else rng.randint(1, line)
        )
        is_write = rng.random() < config.write_fraction
        access = AccessType.WRITE if is_write else AccessType.READ
        data = (
            tuple(rng.randrange(1 << 30) for _ in range(length))
            if is_write
            else None
        )
        if rng.random() < config.explicit_fraction:
            addresses = tuple(
                rng.randrange(config.address_space_words)
                for _ in range(length)
            )
            trace.append(
                ExplicitCommand(
                    addresses=addresses,
                    access=access,
                    broadcast_cycles=1 + (length + 1) // 2,
                    tag=f"rnd{index}",
                    data=data,
                )
            )
            continue
        stride = rng.randint(1, config.max_stride)
        span = (length - 1) * stride + 1
        base_limit = config.address_space_words - span
        if base_limit <= 0:
            stride = 1
            base_limit = config.address_space_words - length
        base = rng.randrange(max(1, base_limit))
        trace.append(
            VectorCommand(
                vector=Vector(base=base, stride=stride, length=length),
                access=access,
                tag=f"rnd{index}",
                data=data,
            )
        )
    return trace

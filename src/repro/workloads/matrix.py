"""Matrix access-pattern workloads.

The paper's introduction motivates the PVA with "programs that operate on
large multi-dimensional arrays": walking a row-major array along a row is
a unit-stride vector, along a column a stride-``C`` vector, and along a
diagonal a stride-``C+1`` vector.  These generators produce the
corresponding command traces so the memory systems can be compared on the
workloads the paper talks about rather than only its kernels.

All generators take a :class:`MatrixLayout` (row-major, word elements)
and emit line-sized :class:`~repro.types.VectorCommand` chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.params import SystemParams
from repro.types import AccessType, Vector, VectorCommand

__all__ = [
    "MatrixLayout",
    "row_walk",
    "column_walk",
    "diagonal_walk",
    "transpose",
    "matrix_vector_by_diagonals",
]


@dataclass(frozen=True)
class MatrixLayout:
    """A row-major matrix of single-word elements in simulated memory."""

    base: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError("matrix base must be >= 0")
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("matrix dimensions must be positive")

    def address(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"element ({row}, {col}) outside {self.rows}x{self.cols}"
            )
        return self.base + row * self.cols + col

    @property
    def words(self) -> int:
        return self.rows * self.cols


def _chunk(
    vector: Vector,
    access: AccessType,
    params: SystemParams,
    tag: str,
) -> List[VectorCommand]:
    return [
        VectorCommand(vector=piece, access=access, tag=f"{tag}[{i}]")
        for i, piece in enumerate(vector.split(params.cache_line_words))
    ]


def row_walk(
    matrix: MatrixLayout,
    row: int,
    params: Optional[SystemParams] = None,
    access: AccessType = AccessType.READ,
) -> List[VectorCommand]:
    """Walk one row: the friendly, unit-stride case."""
    params = params or SystemParams()
    vector = Vector(
        base=matrix.address(row, 0), stride=1, length=matrix.cols
    )
    return _chunk(vector, access, params, f"row{row}")


def column_walk(
    matrix: MatrixLayout,
    col: int,
    params: Optional[SystemParams] = None,
    access: AccessType = AccessType.READ,
) -> List[VectorCommand]:
    """Walk one column: stride = the row length."""
    params = params or SystemParams()
    vector = Vector(
        base=matrix.address(0, col), stride=matrix.cols, length=matrix.rows
    )
    return _chunk(vector, access, params, f"col{col}")


def diagonal_walk(
    matrix: MatrixLayout,
    params: Optional[SystemParams] = None,
    access: AccessType = AccessType.READ,
) -> List[VectorCommand]:
    """Walk the main diagonal: stride = cols + 1 (usually odd — the PVA's
    best case even when the matrix width is a power of two)."""
    params = params or SystemParams()
    length = min(matrix.rows, matrix.cols)
    vector = Vector(
        base=matrix.address(0, 0), stride=matrix.cols + 1, length=length
    )
    return _chunk(vector, access, params, "diag")


def transpose(
    source: MatrixLayout,
    destination: MatrixLayout,
    params: Optional[SystemParams] = None,
) -> List[VectorCommand]:
    """Out-of-place transpose: read source rows densely, scatter them as
    destination columns — one read command and one strided write command
    per line-sized chunk, in program order."""
    params = params or SystemParams()
    if (source.rows, source.cols) != (destination.cols, destination.rows):
        raise ConfigurationError(
            "destination must have transposed dimensions"
        )
    commands: List[VectorCommand] = []
    for row in range(source.rows):
        reads = row_walk(source, row, params)
        writes = _chunk(
            Vector(
                base=destination.address(0, row),
                stride=destination.cols,
                length=destination.rows,
            ),
            AccessType.WRITE,
            params,
            f"t-col{row}",
        )
        # Interleave chunk-by-chunk so each gathered line is immediately
        # scattered, as a blocked transpose loop would.
        for read_cmd, write_cmd in zip(reads, writes):
            commands.append(read_cmd)
            commands.append(write_cmd)
    return commands


def matrix_vector_by_diagonals(
    matrix: MatrixLayout,
    x_base: int,
    y_base: int,
    diagonals: int,
    params: Optional[SystemParams] = None,
) -> List[VectorCommand]:
    """The vaxpy-generating workload: ``y += A_d * x`` per stored
    diagonal ``d`` of a banded matrix (section 6.2: "a 'vector axpy'
    operation that occurs in matrix-vector multiplication by diagonals").

    Per diagonal: read the diagonal (stride cols+1), read x, read y,
    write y.
    """
    params = params or SystemParams()
    length = min(matrix.rows, matrix.cols) - (diagonals - 1)
    if length <= 0:
        raise ConfigurationError(
            f"{diagonals} diagonals do not fit a "
            f"{matrix.rows}x{matrix.cols} matrix"
        )
    commands: List[VectorCommand] = []
    for d in range(diagonals):
        diag = Vector(
            base=matrix.address(0, d), stride=matrix.cols + 1, length=length
        )
        x = Vector(base=x_base, stride=1, length=length)
        y = Vector(base=y_base, stride=1, length=length)
        for array, access in (
            (diag, AccessType.READ),
            (x, AccessType.READ),
            (y, AccessType.READ),
            (y, AccessType.WRITE),
        ):
            commands.extend(
                _chunk(array, access, params, f"mvd{d}")
            )
    return commands
